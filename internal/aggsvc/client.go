package aggsvc

import (
	"fmt"
	"net"
	"time"
)

// Sealer is the key-holding side of a gateway round: it seals a vector
// into opaque lanes before upload and verifies/opens the reduced lanes the
// gateway returns. hear.Context implements it via NewGatewaySealer; this
// package deliberately depends only on the interface, never on key
// material.
type Sealer interface {
	// Seal encrypts vals for one round; tags is nil when verification is
	// disabled. Each Seal advances the collective key, so every round
	// participant must seal exactly once per round.
	Seal(vals []int64) (cipher, tags []byte, err error)
	// Verify checks the reduced lanes before they are trusted.
	Verify(reducedCipher, reducedTags []byte) error
	// Open decrypts the reduced data lane into out.
	Open(reduced []byte, out []int64) error
}

// ClientOptions tunes a gateway client.
type ClientOptions struct {
	// MaxFrameBytes bounds incoming frames (default DefaultMaxFrameBytes).
	MaxFrameBytes int
	// ChunkBytes, when non-zero, caps the SUBMIT chunk below the size the
	// gateway advertises in JOIN.
	ChunkBytes int
	// Timeout bounds one whole Aggregate call (0 = no deadline). Without
	// it a dead gateway blocks the client forever.
	Timeout time.Duration
}

func (o *ClientOptions) fill() {
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
}

// Client drives gateway rounds over one connection. It is not safe for
// concurrent use — like a Context, it belongs to one participant.
type Client struct {
	conn   net.Conn
	sealer Sealer
	opt    ClientOptions
}

// NewClient wraps an established connection (TCP, net.Pipe, ...).
func NewClient(conn net.Conn, sealer Sealer, opt ClientOptions) *Client {
	opt.fill()
	return &Client{conn: conn, sealer: sealer, opt: opt}
}

// Dial connects to a gateway over TCP.
func Dial(addr string, sealer Sealer, opt ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, sealer, opt), nil
}

// Round describes a completed aggregation round.
type Round struct {
	ID      uint64
	Slot    int
	Group   int
	Elapsed time.Duration
}

// Aggregate runs one round: seal vals, HELLO/JOIN, stream the lanes,
// await the reduced aggregate, verify it, and open it into out (len(out)
// >= len(vals)). A gateway-side failure surfaces as *AbortError; a
// verification failure surfaces from the Sealer before anything is
// decrypted.
func (c *Client) Aggregate(vals, out []int64) (Round, error) {
	start := time.Now()
	if c.opt.Timeout > 0 {
		c.conn.SetDeadline(start.Add(c.opt.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if len(out) < len(vals) {
		return Round{}, fmt.Errorf("aggsvc: out %d < %d elements", len(out), len(vals))
	}
	cipher, tags, err := c.sealer.Seal(vals)
	if err != nil {
		return Round{}, fmt.Errorf("aggsvc: seal: %w", err)
	}
	var flags uint8
	if tags != nil {
		flags |= FlagTagged
	}
	hello := helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Flags: flags, Elems: len(vals)}
	if err := writeFrame(c.conn, FrameHello, encodeHello(hello)); err != nil {
		return Round{}, fmt.Errorf("aggsvc: hello: %w", err)
	}

	t, p, err := readFrame(c.conn, c.opt.MaxFrameBytes)
	if err != nil {
		return Round{}, fmt.Errorf("aggsvc: awaiting JOIN: %w", err)
	}
	if t == FrameAbort {
		return Round{}, c.abortError(p)
	}
	if t != FrameJoin {
		return Round{}, fmt.Errorf("aggsvc: expected JOIN, got %s", t)
	}
	join, err := decodeJoin(p)
	if err != nil {
		return Round{}, err
	}
	chunk := join.ChunkBytes
	if c.opt.ChunkBytes > 0 && c.opt.ChunkBytes < chunk {
		chunk = c.opt.ChunkBytes
	}
	if chunk <= 0 {
		return Round{}, fmt.Errorf("aggsvc: gateway advertised chunk %d B", chunk)
	}
	if err := c.submitLane(join.Round, LaneData, cipher, chunk); err != nil {
		return Round{}, err
	}
	if tags != nil {
		if err := c.submitLane(join.Round, LaneTag, tags, chunk); err != nil {
			return Round{}, err
		}
	}

	t, p, err = readFrame(c.conn, c.opt.MaxFrameBytes)
	if err != nil {
		return Round{}, fmt.Errorf("aggsvc: awaiting RESULT: %w", err)
	}
	if t == FrameAbort {
		return Round{}, c.abortError(p)
	}
	if t != FrameResult {
		return Round{}, fmt.Errorf("aggsvc: expected RESULT, got %s", t)
	}
	round, data, rtags, err := decodeResult(p)
	if err != nil {
		return Round{}, err
	}
	if round != join.Round {
		return Round{}, fmt.Errorf("aggsvc: RESULT for round %d, joined round %d", round, join.Round)
	}
	if len(data) != len(cipher) {
		return Round{}, fmt.Errorf("aggsvc: reduced lane %d B, submitted %d B", len(data), len(cipher))
	}
	// Verify before trusting: a tampering (or tag-stripping) gateway must
	// fail here, not decrypt to silently wrong values.
	if err := c.sealer.Verify(data, rtags); err != nil {
		return Round{}, err
	}
	if err := c.sealer.Open(data, out[:len(vals)]); err != nil {
		return Round{}, err
	}
	return Round{ID: join.Round, Slot: join.Slot, Group: join.Group, Elapsed: time.Since(start)}, nil
}

func (c *Client) submitLane(round uint64, lane uint8, buf []byte, chunk int) error {
	for off := 0; off < len(buf); off += chunk {
		end := off + chunk
		if end > len(buf) {
			end = len(buf)
		}
		hdr := encodeSubmitHeader(submitHeader{Round: round, Lane: lane, Offset: off})
		if err := writeFrame(c.conn, FrameSubmit, hdr, buf[off:end]); err != nil {
			return fmt.Errorf("aggsvc: submit lane %d at %d: %w", lane, off, err)
		}
	}
	return nil
}

func (c *Client) abortError(payload []byte) error {
	e, err := decodeAbort(payload)
	if err != nil {
		return err
	}
	return e
}

// ServerStats fetches the gateway's counters over this connection.
func (c *Client) ServerStats() (map[string]uint64, error) {
	if c.opt.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opt.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, FrameStatsReq); err != nil {
		return nil, err
	}
	t, p, err := readFrame(c.conn, c.opt.MaxFrameBytes)
	if err != nil {
		return nil, err
	}
	if t != FrameStats {
		return nil, fmt.Errorf("aggsvc: expected STATS, got %s", t)
	}
	return decodeStats(p)
}

// Close drops the connection.
func (c *Client) Close() error { return c.conn.Close() }
