package aggsvc

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Sealer is the key-holding side of a gateway round: it seals a vector
// into opaque lanes before upload and verifies/opens the reduced lanes the
// gateway returns. hear.Context implements it via NewGatewaySealer; this
// package deliberately depends only on the interface, never on key
// material.
type Sealer interface {
	// Seal encrypts vals for one round at the given key epoch, advancing
	// the collective key from its current epoch up to it (epoch 0 means
	// "advance exactly once"); tags is nil when verification is disabled.
	// The client calls Seal only after JOIN names the round's agreed
	// epoch, so every participant of a round seals at the same epoch even
	// if one of them previously fell behind the key schedule.
	Seal(vals []int64, epoch uint64) (cipher, tags []byte, err error)
	// Verify checks the reduced lanes before they are trusted.
	Verify(reducedCipher, reducedTags []byte) error
	// Open decrypts the reduced data lane into out.
	Open(reduced []byte, out []int64) error
	// Tagged reports whether Seal will produce a tag lane; the client
	// advertises it in HELLO, before anything is sealed.
	Tagged() bool
	// Epoch is the sealer's current key-epoch counter, advertised in
	// HELLO so the gateway can pick the group's seal epoch. It is an
	// opaque counter — never key material.
	Epoch() uint64
}

// SchemeIDer is optionally implemented by Sealers bound to a wire scheme
// other than the default SchemeInt64Sum; the client advertises the id in
// HELLO so the gateway picks the matching keyless fold kernels.
type SchemeIDer interface {
	SchemeID() uint8
}

// DegradedSealer is optionally implemented by Sealers that can verify and
// open a *partial* aggregate — one reduced over an explicit survivor subset
// of the group, with the missing ranks' noise re-derived and canceled
// (hear.GatewaySealer under shared-group keys). A client whose sealer
// accepts degraded results speaks protocol v2: its HELLO carries its rank
// and FlagDegradedOK, and a survivor-set RESULT routes through
// VerifySurvivors/OpenSurvivors instead of Verify/Open. survivors is the
// wire-order global rank set the RESULT declared — passed as the surviving
// set (not the missing one) because a key-blind relay cannot know the group
// size needed to complement it.
type DegradedSealer interface {
	// RankID is this sealer's key-schedule rank, or -1 when it has none (a
	// federation relay aggregating other ranks' inputs).
	RankID() int
	// AcceptsDegraded reports whether the sealer can actually cancel
	// missing-rank noise; false keeps the client on protocol v1.
	AcceptsDegraded() bool
	// VerifySurvivors checks the reduced lanes against the survivor set.
	VerifySurvivors(reducedCipher, reducedTags []byte, survivors []int) error
	// OpenSurvivors decrypts the partial aggregate over the survivor set.
	OpenSurvivors(reduced []byte, out []int64, survivors []int) error
}

// CoverageReporter is optionally implemented by Sealers whose single
// submission stands in for several participants' inputs — a federation
// leaf relaying its cohort's fold upstream. After Seal, the client forwards
// the reported rank coverage in a SURVIVORS frame so the upstream tier can
// name the global survivor union if its round degrades. complete=false
// declares the coverage itself partial (the leaf's own cohort degraded);
// ok=false means coverage cannot be expressed and nothing is sent.
type CoverageReporter interface {
	Coverage() (ranks []uint32, complete bool, ok bool)
}

// NoisePrefetcher is optionally implemented by Sealers that can precompute
// the next round's sealing material while the current round's aggregate is
// in flight (hear.GatewaySealer when Options.NoisePrefetch is enabled).
// The client invokes it after its lanes are uploaded; implementations must
// not block.
type NoisePrefetcher interface {
	PrefetchNext(elems int)
}

// ClientOptions tunes a gateway client.
type ClientOptions struct {
	// MaxFrameBytes bounds incoming frames (default DefaultMaxFrameBytes).
	MaxFrameBytes int
	// ChunkBytes, when non-zero, caps the SUBMIT chunk below the size the
	// gateway advertises in JOIN.
	ChunkBytes int
	// Timeout bounds one whole round attempt (0 = no deadline). Without it
	// a dead gateway blocks the client forever.
	Timeout time.Duration
	// DialTimeout bounds connection establishment — Dial and every
	// reconnect. Zero falls back to Timeout; both zero means unbounded
	// (the pre-timeout behavior, kept only for explicit opt-out).
	DialTimeout time.Duration
	// Dialer, when non-nil, produces the connections this client uses —
	// both the retry path's reconnects and (for Dial) the initial one.
	// Retry requires it: a failed round always redials on a fresh
	// connection, because after a mid-submit abort the old stream may hold
	// half a frame.
	Dialer func() (net.Conn, error)
	// Retry is how many times Aggregate re-attempts a round after a
	// retryable failure (transport errors and the gateway's Deadline,
	// PeerLost and Straggler aborts). Zero disables retry. Retried rounds
	// re-seal — safe because a client only seals after JOIN certifies a
	// full round and names the group's agreed key epoch, so however the
	// previous attempt died, the next round's participants all seal at
	// one epoch.
	Retry int
	// RetryBackoff is the sleep before the first re-attempt, doubling per
	// attempt up to RetryBackoffMax (defaults 50ms and 2s), with ±25%
	// deterministic jitter derived from JitterSeed so a thundering herd of
	// identically-configured clients still spreads out.
	RetryBackoff    time.Duration
	RetryBackoffMax time.Duration
	JitterSeed      int64
	// ReadBufPool, when non-nil, is a *sync.Pool of []byte the client draws
	// its reusable frame read buffer from and returns on Close. Fleets of
	// clients in one process (cmd/hearagg's load generator, the federation
	// Uplink) share one pool so sequential rounds recycle a handful of
	// high-water buffers instead of growing one per client.
	ReadBufPool *sync.Pool
}

func (o *ClientOptions) fill() {
	if o.MaxFrameBytes <= 0 {
		o.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = 2 * time.Second
	}
}

// Client drives gateway rounds. It is not safe for concurrent use — like
// a Context, it belongs to one participant.
type Client struct {
	conn    net.Conn // nil when a failed attempt consumed the connection
	sealer  Sealer
	opt     ClientOptions
	attempt uint64 // lifetime retry counter, feeds the jitter hash
	// rbuf is the reusable frame read buffer: readFrameReuse grows it to
	// the largest frame seen (bounded by MaxFrameBytes) and every later
	// frame lands in it without allocating. Frames returned to callers
	// alias rbuf and are valid only until the next read — aggregateOnce
	// fully consumes each frame before reading the next, and Sealer.Verify
	// implementations that retain lanes (the federation cascade) copy.
	rbuf []byte
}

// NewClient wraps an established connection (TCP, net.Pipe, ...). Set
// ClientOptions.Dialer to enable reconnect-and-retry.
func NewClient(conn net.Conn, sealer Sealer, opt ClientOptions) *Client {
	opt.fill()
	return &Client{conn: conn, sealer: sealer, opt: opt}
}

// Dial connects to a gateway over TCP, bounded by DialTimeout (falling
// back to Timeout). Unless a custom Dialer is given, reconnects reuse the
// same bounded TCP dialer.
func Dial(addr string, sealer Sealer, opt ClientOptions) (*Client, error) {
	opt.fill()
	if opt.Dialer == nil {
		opt.Dialer = func() (net.Conn, error) {
			d := opt.DialTimeout
			if d <= 0 {
				d = opt.Timeout
			}
			if d > 0 {
				return net.DialTimeout("tcp", addr, d)
			}
			return net.Dial("tcp", addr)
		}
	}
	conn, err := opt.Dialer()
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, sealer: sealer, opt: opt}, nil
}

// Round describes a completed aggregation round.
type Round struct {
	ID      uint64
	Slot    int
	Group   int
	Elapsed time.Duration
	Retries int // attempts beyond the first that this call needed
	// Degraded reports that the aggregate covers only Survivors — the
	// gateway completed the round over the participants that delivered
	// before the deadline and this client's sealer canceled the missing
	// ranks' noise. Survivors is the global rank set in ascending order.
	Degraded  bool
	Survivors []int
}

// errTransient marks failures worth retrying: transport-level errors where
// the round's fate is unknown or known-failed-for-everyone. Protocol,
// version and verification failures stay fatal — retrying cannot fix them
// and a tampered aggregate must never be silently re-rolled.
type errTransient struct{ err error }

func (e *errTransient) Error() string { return e.err.Error() }
func (e *errTransient) Unwrap() error { return e.err }

// retryable classifies an attempt's failure.
func retryable(err error) bool {
	var tr *errTransient
	if errors.As(err, &tr) {
		return true
	}
	var aerr *AbortError
	if errors.As(err, &aerr) {
		switch aerr.Code {
		case AbortDeadline, AbortPeerLost, AbortStraggler, AbortUpstream:
			return true
		}
	}
	return false
}

// Aggregate runs one round: seal vals, HELLO/JOIN, stream the lanes,
// await the reduced aggregate, verify it, and open it into out (len(out)
// >= len(vals)). With Retry > 0 and a Dialer configured, retryable
// failures — lost connections and the gateway's Deadline/PeerLost/
// Straggler aborts — are retried on a fresh connection after exponential
// backoff with jitter; each attempt re-seals, so the failed attempt's
// ciphertext is never reused. Fatal failures (protocol violations,
// verification failures) surface immediately; a gateway-side failure
// surfaces as *AbortError.
func (c *Client) Aggregate(vals, out []int64) (Round, error) {
	if len(out) < len(vals) {
		return Round{}, fmt.Errorf("aggsvc: out %d < %d elements", len(out), len(vals))
	}
	var lastErr error
	for attempt := 0; attempt <= c.opt.Retry; attempt++ {
		if attempt > 0 {
			c.sleepBackoff(attempt)
		}
		if c.conn == nil {
			if c.opt.Dialer == nil {
				return Round{}, fmt.Errorf("aggsvc: connection gone and no Dialer to reconnect (last failure: %w)", lastErr)
			}
			conn, err := c.opt.Dialer()
			if err != nil {
				lastErr = err
				continue
			}
			c.conn = conn
		}
		r, err := c.aggregateOnce(vals, out)
		if err == nil {
			r.Retries = attempt
			return r, nil
		}
		if !retryable(err) {
			return Round{}, err
		}
		lastErr = err
		// Always restart from a fresh connection: after a failed round the
		// stream may be desynchronized (half-written SUBMIT, unread frames).
		c.conn.Close()
		c.conn = nil
	}
	return Round{}, &GiveUpError{Op: "round", Attempts: c.opt.Retry + 1, Last: lastErr}
}

// sleepBackoff sleeps the exponential backoff for the given attempt with
// ±25% deterministic jitter (hash of JitterSeed and a lifetime counter).
func (c *Client) sleepBackoff(attempt int) {
	c.attempt++
	time.Sleep(jitterDelay(c.opt.RetryBackoff, c.opt.RetryBackoffMax, c.opt.JitterSeed, c.attempt, attempt))
}

// aggregateOnce drives a single round attempt over the current connection.
func (c *Client) aggregateOnce(vals, out []int64) (Round, error) {
	start := time.Now()
	if c.opt.Timeout > 0 {
		c.conn.SetDeadline(start.Add(c.opt.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	var flags uint8
	if c.sealer.Tagged() {
		flags |= FlagTagged
	}
	scheme := SchemeInt64Sum
	if sid, ok := c.sealer.(SchemeIDer); ok {
		scheme = sid.SchemeID()
	}
	// Speak v2 only when the sealer can actually open a survivor-set
	// RESULT; otherwise stay on the v1 wire image so a degraded-capable
	// gateway never routes a partial aggregate here.
	version, rank := ProtocolV1, -1
	var degraded DegradedSealer
	if d, ok := c.sealer.(DegradedSealer); ok && d.AcceptsDegraded() {
		degraded = d
		version = ProtocolVersion
		rank = d.RankID()
		flags |= FlagDegradedOK
	}
	hello := helloFrame{Version: version, Scheme: scheme, Flags: flags,
		Elems: len(vals), Epoch: c.sealer.Epoch(), Rank: rank}
	b := wireBufs.Get().(*wireBuf)
	putHello(b.fixed[:helloSize(version)], hello)
	err := b.writeFrame(c.conn, FrameHello, b.fixed[:helloSize(version)])
	wireBufs.Put(b)
	if err != nil {
		return Round{}, &errTransient{fmt.Errorf("aggsvc: hello: %w", err)}
	}

	t, p, err := c.readFrameReuse()
	if err != nil {
		return Round{}, &errTransient{fmt.Errorf("aggsvc: awaiting JOIN: %w", err)}
	}
	if t == FrameAbort {
		return Round{}, c.abortError(p)
	}
	if t != FrameJoin {
		return Round{}, fmt.Errorf("aggsvc: expected JOIN, got %s", t)
	}
	join, err := decodeJoin(p)
	if err != nil {
		return Round{}, err
	}
	chunk := join.ChunkBytes
	if c.opt.ChunkBytes > 0 && c.opt.ChunkBytes < chunk {
		chunk = c.opt.ChunkBytes
	}
	if chunk <= 0 {
		return Round{}, fmt.Errorf("aggsvc: gateway advertised chunk %d B", chunk)
	}
	// Seal only now: JOIN certifies a full round and names the agreed key
	// epoch, so an epoch is spent only on rounds the whole group runs.
	cipher, tags, err := c.sealer.Seal(vals, join.Epoch)
	if err != nil {
		return Round{}, fmt.Errorf("aggsvc: seal: %w", err)
	}
	// A relay sealer's submission stands in for a whole cohort: declare
	// which ranks it covers (and whether that coverage is itself complete)
	// before the lanes, so the gateway can name the global survivor union
	// if this round degrades.
	if cr, ok := c.sealer.(CoverageReporter); ok {
		if ranks, complete, covOK := cr.Coverage(); covOK {
			sf := survivorsFrame{Round: join.Round, Complete: complete, Ranks: ranks}
			if err := writeFrame(c.conn, FrameSurvivors, encodeSurvivors(sf)); err != nil {
				return Round{}, &errTransient{fmt.Errorf("aggsvc: survivors: %w", err)}
			}
		}
	}
	if err := c.submitLane(join.Round, LaneData, cipher, chunk); err != nil {
		return Round{}, err
	}
	if tags != nil {
		if err := c.submitLane(join.Round, LaneTag, tags, chunk); err != nil {
			return Round{}, err
		}
	}
	// Lanes are uploaded; the wait for RESULT below is the round's
	// communication window. A sealer that can precompute (hear's noise
	// prefetcher) overlaps the next round's keystream generation with the
	// gateway's aggregation. Optional-interface dispatch keeps this package
	// key-blind — it never learns what the sealer precomputes.
	if np, ok := c.sealer.(NoisePrefetcher); ok {
		np.PrefetchNext(len(vals))
	}

	t, p, err = c.readFrameReuse()
	if err != nil {
		return Round{}, &errTransient{fmt.Errorf("aggsvc: awaiting RESULT: %w", err)}
	}
	if t == FrameAbort {
		return Round{}, c.abortError(p)
	}
	if t != FrameResult {
		return Round{}, fmt.Errorf("aggsvc: expected RESULT, got %s", t)
	}
	round, data, rtags, wireSurv, err := decodeResultV2(p)
	if err != nil {
		return Round{}, err
	}
	if round != join.Round {
		return Round{}, fmt.Errorf("aggsvc: RESULT for round %d, joined round %d", round, join.Round)
	}
	if len(data) != len(cipher) {
		return Round{}, fmt.Errorf("aggsvc: reduced lane %d B, submitted %d B", len(data), len(cipher))
	}
	var surv []int
	if wireSurv != nil {
		// The gateway promised (HELLO flag gate) never to send a partial
		// aggregate to a client that cannot open one; a survivor trailer
		// arriving anyway is a protocol violation, fatal like tampering.
		if degraded == nil {
			return Round{}, fmt.Errorf("aggsvc: RESULT names %d survivor ranks but this sealer cannot open a partial aggregate", len(wireSurv))
		}
		surv = make([]int, len(wireSurv))
		for i, rk := range wireSurv {
			surv[i] = int(rk)
		}
	}
	// Verify before trusting: a tampering (or tag-stripping) gateway must
	// fail here, not decrypt to silently wrong values — and a verification
	// failure is deliberately fatal, not retried, so tampering surfaces.
	// Degraded rounds verify and open against the declared survivor set,
	// re-deriving and canceling exactly the missing ranks' noise.
	if surv != nil {
		if err := degraded.VerifySurvivors(data, rtags, surv); err != nil {
			return Round{}, err
		}
		if err := degraded.OpenSurvivors(data, out[:len(vals)], surv); err != nil {
			return Round{}, err
		}
	} else {
		if err := c.sealer.Verify(data, rtags); err != nil {
			return Round{}, err
		}
		if err := c.sealer.Open(data, out[:len(vals)]); err != nil {
			return Round{}, err
		}
	}
	return Round{ID: join.Round, Slot: join.Slot, Group: join.Group, Elapsed: time.Since(start),
		Degraded: surv != nil, Survivors: surv}, nil
}

// submitLane streams one sealed lane as SUBMIT frames. Each frame is one
// vectored write of the pooled header scratch plus a window of the sealed
// buffer — the lane bytes are never copied and the loop allocates nothing.
func (c *Client) submitLane(round uint64, lane uint8, buf []byte, chunk int) error {
	b := wireBufs.Get().(*wireBuf)
	defer wireBufs.Put(b)
	for off := 0; off < len(buf); off += chunk {
		end := off + chunk
		if end > len(buf) {
			end = len(buf)
		}
		putSubmitHeader(b.fixed[:submitHeaderBytes], submitHeader{Round: round, Lane: lane, Offset: off})
		if err := b.writeFrame(c.conn, FrameSubmit, b.fixed[:submitHeaderBytes], buf[off:end]); err != nil {
			return &errTransient{fmt.Errorf("aggsvc: submit lane %d at %d: %w", lane, off, err)}
		}
	}
	return nil
}

// readFrameReuse reads one frame into the client's reusable buffer,
// growing it at most to the length-checked high-water mark. The returned
// payload aliases the buffer and is valid until the next call.
func (c *Client) readFrameReuse() (FrameType, []byte, error) {
	t, n, err := readFrameHeader(c.conn, c.opt.MaxFrameBytes)
	if err != nil {
		return t, nil, err
	}
	if c.rbuf == nil && c.opt.ReadBufPool != nil {
		if v := c.opt.ReadBufPool.Get(); v != nil {
			c.rbuf = v.([]byte)
		}
	}
	if cap(c.rbuf) < n {
		c.rbuf = make([]byte, n)
	}
	p := c.rbuf[:n]
	if _, err := io.ReadFull(c.conn, p); err != nil {
		return t, nil, err
	}
	return t, p, nil
}

func (c *Client) abortError(payload []byte) error {
	e, err := decodeAbort(payload)
	if err != nil {
		return err
	}
	return e
}

// ServerStats fetches the gateway's counters over this connection.
func (c *Client) ServerStats() (map[string]uint64, error) {
	if c.conn == nil {
		if c.opt.Dialer == nil {
			return nil, errors.New("aggsvc: connection gone and no Dialer to reconnect")
		}
		conn, err := c.opt.Dialer()
		if err != nil {
			return nil, err
		}
		c.conn = conn
	}
	if c.opt.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.opt.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, FrameStatsReq); err != nil {
		return nil, err
	}
	t, p, err := c.readFrameReuse()
	if err != nil {
		return nil, err
	}
	if t != FrameStats {
		return nil, fmt.Errorf("aggsvc: expected STATS, got %s", t)
	}
	return decodeStats(p)
}

// Close drops the connection and, when a ReadBufPool is configured,
// returns the grown read buffer for the next client in the fleet.
func (c *Client) Close() error {
	if c.rbuf != nil && c.opt.ReadBufPool != nil {
		c.opt.ReadBufPool.Put(c.rbuf)
		c.rbuf = nil
	}
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}
