package aggsvc

import (
	"net"
	"testing"
	"time"
)

type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

type fakeConn struct {
	net.Conn
	remote net.Addr
}

func (c *fakeConn) RemoteAddr() net.Addr { return c.remote }

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAssignCohortPolicies(t *testing.T) {
	conn := func(addr string) net.Conn { return &fakeConn{remote: fakeAddr(addr)} }

	t.Run("flat", func(t *testing.T) {
		s := newTestServer(t, Config{Group: 2})
		if c := s.assignCohort(conn("10.0.0.1:999")); c != 0 {
			t.Errorf("flat gateway assigned cohort %d", c)
		}
	})

	t.Run("static-pin", func(t *testing.T) {
		s := newTestServer(t, Config{Group: 2, Cohorts: 4,
			CohortStatic: map[string]int{"10.0.0.7": 3}})
		if c := s.assignCohort(conn("10.0.0.7:1234")); c != 3 {
			t.Errorf("pinned host assigned cohort %d, want 3", c)
		}
		// The pin is per host: a different port on the same host sticks.
		if c := s.assignCohort(conn("10.0.0.7:9")); c != 3 {
			t.Errorf("pinned host (other port) assigned cohort %d, want 3", c)
		}
	})

	t.Run("hash-stable-and-bounded", func(t *testing.T) {
		s := newTestServer(t, Config{Group: 2, Cohorts: 5})
		seen := map[int]bool{}
		for i := 0; i < 64; i++ {
			addr := fakeAddr("host-" + string(rune('a'+i%26)) + ":80").String()
			c1 := s.assignCohort(conn(addr))
			c2 := s.assignCohort(conn(addr))
			if c1 != c2 {
				t.Fatalf("host %q hashed to %d then %d", addr, c1, c2)
			}
			if c1 < 0 || c1 >= 5 {
				t.Fatalf("host %q assigned cohort %d outside [0, 5)", addr, c1)
			}
			seen[c1] = true
		}
		if len(seen) < 2 {
			t.Errorf("26 hosts all hashed to one cohort")
		}
	})

	t.Run("cohort-by-override", func(t *testing.T) {
		s := newTestServer(t, Config{Group: 2, Cohorts: 3,
			CohortBy: func(remote net.Addr) int { return len(remote.String()) % 3 }})
		if c := s.assignCohort(conn("ab:1")); c != len("ab:1")%3 {
			t.Errorf("override ignored: got %d", c)
		}
		// Out-of-range overrides fall back to cohort 0 instead of crashing
		// the round manager.
		s2 := newTestServer(t, Config{Group: 2, Cohorts: 3,
			CohortBy: func(net.Addr) int { return 99 }})
		if c := s2.assignCohort(conn("x:1")); c != 0 {
			t.Errorf("out-of-range override assigned cohort %d, want 0", c)
		}
	})
}

func TestConfigCohortValidation(t *testing.T) {
	if _, err := NewServer(Config{Group: 2, Cohorts: -1}); err == nil {
		t.Error("negative cohort count accepted")
	}
	if _, err := NewServer(Config{Group: 2, Cohorts: 2,
		CohortStatic: map[string]int{"h": 2}}); err == nil {
		t.Error("out-of-range static cohort accepted")
	}
}

// TestShardedRoundsFillIndependently pins the sharded round manager: two
// cohorts interleave joins without sharing rounds, and each fills at its
// own group size.
func TestShardedRoundsFillIndependently(t *testing.T) {
	m := roundManager{group: 2, timeout: time.Minute}
	p := roundParams{scheme: SchemeInt64Sum, elems: 4}

	r0a, _, created, aerr := m.join(nil, p, 1, 0, partMeta{rank: -1})
	if aerr != nil || !created {
		t.Fatalf("cohort 0 first join: %v created=%v", aerr, created)
	}
	r1a, _, created, aerr := m.join(nil, p, 5, 1, partMeta{rank: -1})
	if aerr != nil || !created {
		t.Fatalf("cohort 1 first join: %v created=%v", aerr, created)
	}
	if r0a == r1a || r0a.id == r1a.id {
		t.Fatal("cohorts share a round")
	}

	r0b, _, created, aerr := m.join(nil, p, 2, 0, partMeta{rank: -1})
	if aerr != nil || created || r0b != r0a {
		t.Fatalf("cohort 0 second join: %v created=%v same=%v", aerr, created, r0b == r0a)
	}
	select {
	case <-r0a.fullCh:
	default:
		t.Fatal("cohort 0 round did not fill at group size")
	}
	select {
	case <-r1a.fullCh:
		t.Fatal("cohort 1 round filled with one participant")
	default:
	}
	// Flat manager: the epoch fixes at fill time as max(HELLO epochs)+1.
	if got := r0a.sealEpoch(); got != 3 {
		t.Fatalf("cohort 0 seal epoch = %d, want 3", got)
	}

	// The filled round left the open table; the next cohort-0 join opens a
	// fresh one.
	r0c, _, created, aerr := m.join(nil, p, 1, 0, partMeta{rank: -1})
	if aerr != nil || !created || r0c == r0a {
		t.Fatalf("post-fill join: %v created=%v fresh=%v", aerr, created, r0c != r0a)
	}
	for _, r := range []*roundState{r0a, r1a, r0c} {
		r.timer.Stop()
	}
}
