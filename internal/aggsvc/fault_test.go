package aggsvc

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"hear/internal/core/fold"
	"hear/internal/inc"
)

// helloConn opens a connection to the pipe listener and sends HELLO. The
// JOIN is read separately (readJoin): under the JOIN-at-fill protocol it
// only arrives once the round's whole group has said HELLO.
func helloConn(t *testing.T, l *PipeListener, elems int) net.Conn {
	t.Helper()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	hello := helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Elems: elems}
	if err := writeFrame(conn, FrameHello, encodeHello(hello)); err != nil {
		t.Fatal(err)
	}
	return conn
}

// readJoin reads the admission ticket off a conn that said HELLO.
func readJoin(t *testing.T, conn net.Conn) joinFrame {
	t.Helper()
	ft, p, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameJoin {
		t.Fatalf("expected JOIN, got %s", ft)
	}
	join, err := decodeJoin(p)
	if err != nil {
		t.Fatal(err)
	}
	return join
}

func submitChunk(t *testing.T, conn net.Conn, round uint64, off int, payload []byte) {
	t.Helper()
	hdr := encodeSubmitHeader(submitHeader{Round: round, Lane: LaneData, Offset: off})
	if err := writeFrame(conn, FrameSubmit, hdr, payload); err != nil {
		t.Fatal(err)
	}
}

func readAbort(t *testing.T, conn net.Conn) *AbortError {
	t.Helper()
	ft, p, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatalf("reading expected ABORT: %v", err)
	}
	if ft != FrameAbort {
		t.Fatalf("expected ABORT, got %s", ft)
	}
	e, err := decodeAbort(p)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestDeadlineAbortRacesInflightFolds is the fold/abort race coverage:
// the round deadline fires while chunks sit on the worker pool behind a
// stalled fold. Tasks that were still queued at the abort must not touch
// the accumulator, and every pooled block must come back (no leaks).
func TestDeadlineAbortRacesInflightFolds(t *testing.T) {
	const chunkBytes = 1 << 10
	const chunks = 4
	const elems = chunkBytes * chunks / 8

	gate := make(chan struct{})
	entered := make(chan struct{}, chunks)
	var foldCount int
	var mu sync.Mutex
	gated := func(dst, src []byte) {
		entered <- struct{}{}
		<-gate
		mu.Lock()
		foldCount++
		mu.Unlock()
		fold.SumUint64(dst, src)
	}
	orig := laneFolds[SchemeInt64Sum]
	laneFolds[SchemeInt64Sum] = struct{ data, tag inc.Fold }{data: gated, tag: orig.tag}
	defer func() { laneFolds[SchemeInt64Sum] = orig }()

	s, err := NewServer(Config{
		Group:        2, // the second participant joins but never submits
		Workers:      1, // one worker: the gated fold stalls the whole queue
		PoolBlocks:   chunks * 2,
		ChunkBytes:   chunkBytes,
		RoundTimeout: 300 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := NewPipeListener()
	go s.Serve(l)
	defer s.Close()

	conn := helloConn(t, l, elems)
	defer conn.Close()
	silent := helloConn(t, l, elems) // fills the round, then never submits
	defer silent.Close()
	join := readJoin(t, conn)
	readJoin(t, silent)
	payload := make([]byte, chunkBytes)
	for i := range payload {
		payload[i] = 1
	}
	for i := 0; i < chunks; i++ {
		submitChunk(t, conn, join.Round, i*chunkBytes, payload)
	}
	// The first chunk's fold is executing (stalled at the gate); the rest
	// are queued behind it on the single worker.
	<-entered

	// Deadline expires with the folds still in flight.
	aerr := readAbort(t, conn)
	if aerr.Code != AbortDeadline {
		t.Fatalf("abort code %s, want %s", aerr.Code, AbortDeadline)
	}
	// Release the stalled fold; the queued tasks now run foldChunk after
	// the abort and must skip the accumulator.
	close(gate)

	// Every pooled block must come home: drain the pool to its cap without
	// an error. Poll because task retirement is asynchronous.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var blocks [][]byte
		ok := true
		for i := 0; i < chunks*2; i++ {
			b, err := s.pool.Get()
			if err != nil {
				ok = false
				break
			}
			blocks = append(blocks, b)
		}
		for _, b := range blocks {
			s.pool.Put(b)
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never drained to capacity: a fold task leaked its block")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	got := foldCount
	mu.Unlock()
	if got != 1 {
		t.Fatalf("%d folds wrote to an aborted round's accumulator; only the one in flight before the abort may run", got)
	}
}

// TestQuorumEvictsStragglers: with Quorum set, a deadline with enough
// finishers evicts the stragglers (connection dropped) and hands everyone
// the retryable AbortStraggler; the finisher's connection survives for an
// immediate re-round.
func TestQuorumEvictsStragglers(t *testing.T) {
	const elems = 16
	s, err := NewServer(Config{
		Group:        2,
		Quorum:       1,
		RoundTimeout: 300 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := NewPipeListener()
	go s.Serve(l)
	defer s.Close()

	// Finisher and straggler both join; the round fills and JOINs flow.
	finisher := helloConn(t, l, elems)
	defer finisher.Close()
	straggler := helloConn(t, l, elems)
	defer straggler.Close()
	join := readJoin(t, finisher)
	readJoin(t, straggler)

	// The finisher submits its whole lane; the straggler goes silent.
	lane := make([]byte, elems*8)
	binary.LittleEndian.PutUint64(lane, 7)
	submitChunk(t, finisher, join.Round, 0, lane)

	// Both get the typed straggler abort at the deadline.
	fa := readAbort(t, finisher)
	if fa.Code != AbortStraggler {
		t.Fatalf("finisher abort %s, want %s", fa.Code, AbortStraggler)
	}
	sa := readAbort(t, straggler)
	if sa.Code != AbortStraggler {
		t.Fatalf("straggler abort %s, want %s", sa.Code, AbortStraggler)
	}

	// The straggler's connection is dead: the gateway hangs up after the
	// abort, so the next read fails.
	straggler.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, _, err := readFrame(straggler, DefaultMaxFrameBytes); err == nil {
		t.Fatal("evicted straggler's connection still serves frames")
	}

	// The finisher's connection survives: a fresh HELLO is admitted into a
	// new round, which a second live client fills.
	hello := helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Elems: elems}
	if err := writeFrame(finisher, FrameHello, encodeHello(hello)); err != nil {
		t.Fatalf("finisher re-HELLO: %v", err)
	}
	filler := helloConn(t, l, elems)
	defer filler.Close()
	rejoin := readJoin(t, finisher)
	readJoin(t, filler)
	if rejoin.Round == join.Round {
		t.Fatal("re-JOIN landed in the aborted round")
	}

	if got := s.StatsMap()["clients_evicted"]; got != 1 {
		t.Fatalf("clients_evicted = %d, want 1", got)
	}
}

// TestQuorumNotMetFallsBackToDeadline: with Quorum unmet at the deadline
// the abort stays the plain (still retryable) AbortDeadline and nobody is
// evicted.
func TestQuorumNotMetFallsBackToDeadline(t *testing.T) {
	s, err := NewServer(Config{
		Group:        2,
		Quorum:       2,
		RoundTimeout: 200 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := NewPipeListener()
	go s.Serve(l)
	defer s.Close()

	// A lone joiner: the round never fills, so no JOIN is ever sent — the
	// first frame back is the deadline abort.
	conn := helloConn(t, l, 8)
	defer conn.Close()
	if a := readAbort(t, conn); a.Code != AbortDeadline {
		t.Fatalf("abort %s, want %s", a.Code, AbortDeadline)
	}
	if got := s.StatsMap()["clients_evicted"]; got != 0 {
		t.Fatalf("clients_evicted = %d, want 0", got)
	}
}

// TestQuorumValidation: Quorum outside [0, Group] is a config error.
func TestQuorumValidation(t *testing.T) {
	if _, err := NewServer(Config{Group: 2, Quorum: 3}); err == nil {
		t.Fatal("quorum > group accepted")
	}
	if _, err := NewServer(Config{Group: 2, Quorum: -1}); err == nil {
		t.Fatal("negative quorum accepted")
	}
}

// TestRetryableClassification pins which failures the client will retry.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{&AbortError{Code: AbortDeadline}, true},
		{&AbortError{Code: AbortPeerLost}, true},
		{&AbortError{Code: AbortStraggler}, true},
		{&AbortError{Code: AbortProtocol}, false},
		{&AbortError{Code: AbortVersion}, false},
		{&AbortError{Code: AbortMismatch}, false},
		{&AbortError{Code: AbortOversize}, false},
		{&AbortError{Code: AbortShutdown}, false},
		{&errTransient{errors.New("conn reset")}, true},
		{errors.New("seal: bad input"), false},
	}
	for _, c := range cases {
		if got := retryable(c.err); got != c.want {
			t.Errorf("retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
