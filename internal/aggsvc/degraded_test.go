package aggsvc

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hear"
	"hear/internal/homac"
	"hear/internal/mpi"
)

// Degraded-round end-to-end coverage: a gateway running DegradedRounds
// completes over the surviving participant set when stragglers die
// post-JOIN, the RESULT names the survivor union, and the survivors'
// sealers cancel exactly the missing ranks' noise. The root hear package is
// imported here (it structurally implements the Sealer interfaces without
// depending on this package), so these tests exercise the full crypto
// stack: telescoping noise, shared-group key derivation, HoMAC subset
// verification.

// newDegradedSealers builds a shared-group-key world of size participants.
// seed != 0 attaches a shared HoMAC verifier (Int64Sum only).
func newDegradedSealers(t *testing.T, size int, kind hear.SchemeKind, seed uint64) []*hear.GatewaySealer {
	t.Helper()
	w := mpi.NewWorld(size)
	ctxs, err := hear.Init(w, hear.Options{SharedGroupKeys: true})
	if err != nil {
		t.Fatal(err)
	}
	var verifier *homac.Vector
	if seed != 0 {
		if verifier, err = hear.NewVerifier(seed); err != nil {
			t.Fatal(err)
		}
	}
	sealers := make([]*hear.GatewaySealer, size)
	for i, c := range ctxs {
		if sealers[i], err = c.NewGatewaySealerScheme(kind, verifier); err != nil {
			t.Fatal(err)
		}
		if !sealers[i].AcceptsDegraded() {
			t.Fatalf("shared-group sealer %d does not accept degraded rounds", i)
		}
	}
	return sealers
}

// joinThenDie connects a participant that says HELLO, reads its JOIN, and
// then fails per kill: "silent" never submits a byte (and reads out its
// eventual ABORT), "disconnect" closes the connection outright. Runs on a
// victim goroutine, so failures are returned, not fataled.
func joinThenDie(l *PipeListener, h helloFrame, kill string) (*AbortError, error) {
	conn, err := l.Dial()
	if err != nil {
		return nil, err
	}
	if err := writeFrame(conn, FrameHello, encodeHello(h)); err != nil {
		conn.Close()
		return nil, err
	}
	ft, p, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if ft != FrameJoin {
		conn.Close()
		return nil, fmt.Errorf("victim expected JOIN, got %s", ft)
	}
	if _, err := decodeJoin(p); err != nil {
		conn.Close()
		return nil, err
	}
	if kill == "disconnect" {
		conn.Close()
		return nil, nil
	}
	// Silent: park until the gateway delivers the eviction ABORT.
	defer conn.Close()
	ft, p, err = readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		return nil, err
	}
	if ft != FrameAbort {
		return nil, fmt.Errorf("victim expected ABORT, got %s", ft)
	}
	return decodeAbort(p)
}

// TestDegradedRoundSurvivorsComplete is the tentpole scenario over the full
// crypto stack: one participant of four dies after JOIN, the gateway
// degrades at the deadline, and the three survivors receive a verified
// aggregate equal to the plaintext fold over exactly their inputs — for
// every gateway-foldable scheme, with the victim either going silent or
// dropping its connection mid-round.
func TestDegradedRoundSurvivorsComplete(t *testing.T) {
	const clients, victim, elems = 4, 1, 257
	cases := []struct {
		name   string
		kind   hear.SchemeKind
		scheme uint8
		seed   uint64 // 0 = untagged
		fold   func(acc, v int64) int64
		unit   int64
	}{
		{"sum-verified", hear.Int64Sum, SchemeInt64Sum, 0xdead5, func(a, v int64) int64 { return a + v }, 0},
		{"prod", hear.Int64Prod, SchemeInt64Prod, 0, func(a, v int64) int64 { return int64(uint64(a) * uint64(v)) }, 1},
		{"xor", hear.Int64Xor, SchemeInt64Xor, 0, func(a, v int64) int64 { return a ^ v }, 0},
	}
	for _, tc := range cases {
		for _, kill := range []string{"silent", "disconnect"} {
			t.Run(tc.name+"/"+kill, func(t *testing.T) {
				sealers := newDegradedSealers(t, clients, tc.kind, tc.seed)
				inputs := make([][]int64, clients)
				want := make([]int64, elems) // plaintext fold over the survivors only
				for j := range want {
					want[j] = tc.unit
				}
				for i := range inputs {
					inputs[i] = make([]int64, elems)
					for j := range inputs[i] {
						inputs[i][j] = int64((i+2)*(j+3)) - 41
						if i != victim {
							want[j] = tc.fold(want[j], inputs[i][j])
						}
					}
				}

				s, l := startPipeServer(t, Config{
					Group:          clients,
					Quorum:         clients - 1,
					DegradedRounds: true,
					RoundTimeout:   500 * time.Millisecond,
					Logf:           t.Logf,
				})

				victimFlags := FlagDegradedOK
				if tc.seed != 0 {
					victimFlags |= FlagTagged
				}
				type victimResult struct {
					aerr *AbortError
					err  error
				}
				victimDone := make(chan victimResult, 1)
				go func() {
					aerr, err := joinThenDie(l, helloFrame{
						Version: ProtocolVersion, Scheme: tc.scheme, Flags: victimFlags,
						Elems: elems, Epoch: sealers[victim].Epoch(), Rank: victim,
					}, kill)
					victimDone <- victimResult{aerr, err}
				}()

				outs := make([][]int64, clients)
				rounds := make([]Round, clients)
				errs := make([]error, clients)
				var wg sync.WaitGroup
				for i := 0; i < clients; i++ {
					if i == victim {
						continue
					}
					conn, err := l.Dial()
					if err != nil {
						t.Fatal(err)
					}
					c := NewClient(conn, sealers[i], ClientOptions{Timeout: 10 * time.Second})
					wg.Add(1)
					go func(i int) {
						defer wg.Done()
						defer c.Close()
						outs[i] = make([]int64, elems)
						rounds[i], errs[i] = c.Aggregate(inputs[i], outs[i])
					}(i)
				}
				wg.Wait()

				vr := <-victimDone
				if vr.err != nil {
					t.Fatalf("victim: %v", vr.err)
				}
				if kill == "silent" && (vr.aerr == nil || vr.aerr.Code != AbortStraggler) {
					t.Fatalf("victim abort = %v, want %s", vr.aerr, AbortStraggler)
				}
				wantSurv := []int{0, 2, 3}
				for i := 0; i < clients; i++ {
					if i == victim {
						continue
					}
					if errs[i] != nil {
						t.Fatalf("survivor %d: %v", i, errs[i])
					}
					if !rounds[i].Degraded {
						t.Fatalf("survivor %d round not marked degraded", i)
					}
					if len(rounds[i].Survivors) != len(wantSurv) {
						t.Fatalf("survivor %d survivor set %v, want %v", i, rounds[i].Survivors, wantSurv)
					}
					for k, rk := range wantSurv {
						if rounds[i].Survivors[k] != rk {
							t.Fatalf("survivor %d survivor set %v, want %v", i, rounds[i].Survivors, wantSurv)
						}
					}
					for j := range want {
						if outs[i][j] != want[j] {
							t.Fatalf("survivor %d elem %d = %d, want %d (plaintext fold over survivors)",
								i, j, outs[i][j], want[j])
						}
					}
				}
				// The eviction counter for a disconnected victim increments
				// asynchronously, when the gateway's delivery to the dead
				// connection fails — possibly after the survivors' rounds
				// have already returned. Poll briefly instead of racing it.
				var m map[string]uint64
				for deadline := time.Now().Add(5 * time.Second); ; {
					m = s.StatsMap()
					if m["clients_evicted"] == 1 || time.Now().After(deadline) {
						break
					}
					time.Sleep(10 * time.Millisecond)
				}
				if m["rounds_degraded"] != 1 {
					t.Errorf("rounds_degraded = %d, want 1", m["rounds_degraded"])
				}
				if m["clients_evicted"] != 1 {
					t.Errorf("clients_evicted = %d, want 1", m["clients_evicted"])
				}
			})
		}
	}
}

// TestDegradedFallsBackWhenSurvivorCannotOpen: when a delivered participant
// is not degraded-capable (no shared-group keys, so it negotiates protocol
// v1), the gateway must not ship it a partial aggregate it cannot decrypt —
// the deadline falls back to the evict-and-retry straggler cut instead.
func TestDegradedFallsBackWhenSurvivorCannotOpen(t *testing.T) {
	const clients, elems = 2, 16
	// Per-rank keys: AcceptsDegraded is false, so the client stays on v1.
	w := mpi.NewWorld(clients)
	ctxs, err := hear.Init(w, hear.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sealer, err := ctxs[0].NewGatewaySealerScheme(hear.Int64Sum, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sealer.AcceptsDegraded() {
		t.Fatal("per-rank-key sealer claims degraded capability")
	}

	s, l := startPipeServer(t, Config{
		Group:          clients,
		Quorum:         1,
		DegradedRounds: true,
		RoundTimeout:   400 * time.Millisecond,
		Logf:           t.Logf,
	})

	go joinThenDie(l, helloFrame{
		Version: ProtocolVersion, Scheme: SchemeInt64Sum,
		Elems: elems, Epoch: sealer.Epoch(), Rank: 1,
	}, "disconnect")

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn, sealer, ClientOptions{Timeout: 10 * time.Second})
	defer c.Close()
	out := make([]int64, elems)
	_, err = c.Aggregate(make([]int64, elems), out)
	var aerr *AbortError
	if !errors.As(err, &aerr) || aerr.Code != AbortStraggler {
		t.Fatalf("v1 survivor got %v, want %s", err, AbortStraggler)
	}
	if got := s.StatsMap()["rounds_degraded"]; got != 0 {
		t.Errorf("rounds_degraded = %d, want 0 (round must not degrade past a v1 survivor)", got)
	}
}

// TestDegradedRequiresQuorum: DegradedRounds without a quorum policy is a
// config error — degrading is quorum-gated by design.
func TestDegradedRequiresQuorum(t *testing.T) {
	if _, err := NewServer(Config{Group: 3, DegradedRounds: true}); err == nil {
		t.Fatal("DegradedRounds without Quorum accepted")
	}
	if _, err := NewServer(Config{Group: 3, Quorum: 2, DegradedRounds: true}); err != nil {
		t.Fatalf("DegradedRounds with quorum rejected: %v", err)
	}
}

// TestAbortReleasesTimer pins the early-end resource release: a round that
// aborts before its deadline must stop and drop its timer and release its
// participant references immediately, not when the deadline would have
// fired.
func TestAbortReleasesTimer(t *testing.T) {
	m := &roundManager{group: 2, timeout: time.Hour, chunk: DefaultChunkBytes, open: map[int]*roundState{}}
	p := roundParams{scheme: SchemeInt64Sum, elems: 8}
	ca, _ := net.Pipe()
	defer ca.Close()
	r, _, _, aerr := m.join(ca, p, 1, 0, partMeta{rank: -1})
	if aerr != nil {
		t.Fatal(aerr)
	}
	r.mu.Lock()
	if r.timer == nil {
		t.Fatal("open round has no deadline timer")
	}
	r.mu.Unlock()
	r.abort(AbortShutdown, "test teardown")
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.timer != nil {
		t.Error("aborted round still holds its deadline timer")
	}
	if r.parts != nil {
		t.Error("aborted round still holds participant references")
	}
}
