package aggsvc

import (
	"net"
	"sync"
)

// PipeListener is a net.Listener whose connections are in-process
// net.Pipe pairs: Dial hands one end to the next Accept. It lets the whole
// gateway — server, round manager, worker pool, client — run under go test
// without opening sockets, so the race detector exercises the server's
// locking on every test run.
type PipeListener struct {
	ch   chan net.Conn
	done chan struct{}
	once sync.Once
}

// NewPipeListener returns a listener ready for Server.Serve.
func NewPipeListener() *PipeListener {
	return &PipeListener{ch: make(chan net.Conn), done: make(chan struct{})}
}

// Dial creates a connection to the listener, blocking until Accept takes
// the server end.
func (l *PipeListener) Dial() (net.Conn, error) {
	client, server := net.Pipe()
	select {
	case l.ch <- server:
		return client, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Accept implements net.Listener.
func (l *PipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.ch:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener.
func (l *PipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// Addr implements net.Listener.
func (l *PipeListener) Addr() net.Addr { return pipeAddr{} }
