// Package keys implements HEAR's key generation and per-rank key state
// (§5, "Key Generation"). Initialization is per communicator: every rank i
// draws a secret starting key k_s_i and shares it only with the ranks that
// need it for the telescoping noise (its ring predecessor) — plus rank 0's
// key, which every rank needs to decrypt. Rank 0 additionally draws the
// collective key k_c, the encryption key k_e (the PRF key), and the
// progression key k_p, and broadcasts them inside the secure environment.
//
// After initialization every rank holds exactly six keys — Θ(1) space
// regardless of communicator size — and before each Allreduce the whole
// communicator advances k_c ← F_{k_p}(k_c), which is what provides
// temporal safety.
package keys

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"

	"hear/internal/prf"
)

// KeyBytes is the PRF key length for k_e and k_p (AES-128).
const KeyBytes = 16

// rankKeyDomain separates the shared-group starting-key derivation
// k_s_i = G_{k_g}(rankKeyDomain, i) from every other use of a PRF in the
// system. The group PRF G is keyed with its own k_g (independent of k_e
// and k_p), so the constant is belt-and-braces rather than load-bearing.
const rankKeyDomain uint64 = 0xA24BAED4963EE407

// RankState is the key material one rank is permitted to hold. It contains
// rank i's own starting key, the successor's key (consumed by the canceling
// noise term of eqs. 1–3 and 6), rank 0's key (consumed by decryption), and
// the three collective secrets.
type RankState struct {
	Rank int
	Size int

	SelfKey uint64 // k_s_i
	NextKey uint64 // k_s_{(i+1) mod P}
	RootKey uint64 // k_s_0

	collective uint64  // k_c, progressed before every Allreduce
	epoch      uint64  // number of Advance calls applied to k_c
	Enc        prf.PRF // F keyed with k_e
	prog       prf.PRF // F keyed with k_p

	// group is the shared-group key-derivation PRF G_{k_g}; non-nil only
	// under Config.SharedGroup, where every starting key is
	// k_s_i = G_{k_g}(rankKeyDomain, i) and any rank can therefore re-derive
	// any other rank's noise stream (the property degraded rounds need).
	group prf.PRF
}

// Config controls key generation.
type Config struct {
	// Backend selects the PRF backend for k_e and k_p (default AES-CTR fast).
	Backend string
	// Rand is the entropy source; nil means crypto/rand.Reader. Tests may
	// inject a deterministic reader.
	Rand io.Reader
	// SharedGroup switches starting-key generation from independent random
	// draws to PRF derivation under a single group key k_g:
	// k_s_i = G_{k_g}(i). Every rank then holds k_g and can reconstruct the
	// noise stream of any other rank — which is exactly what lets a
	// degraded (dropout-tolerant) round fold the missing ranks' noise back
	// in and still decrypt. The trade-off is deliberate and documented:
	// under the default policy a rank learns only its ring neighbours'
	// keys; under SharedGroup the whole group shares one derivation secret,
	// as in the shared-key secure-aggregation schemes. The gateway remains
	// key-blind either way.
	SharedGroup bool
}

func (c *Config) fill() {
	if c.Backend == "" {
		c.Backend = prf.BackendAESFast
	}
	if c.Rand == nil {
		c.Rand = rand.Reader
	}
}

// Generate runs the initialization phase for a communicator of size P and
// returns one RankState per rank. In a deployment each state would exist
// only inside that rank's secure environment; the slice models the result
// of the secure exchange. The states deliberately contain *only* the keys
// §5 grants each rank: k_s_i, k_s_{i+1}, k_s_0, k_c, k_e, k_p.
func Generate(size int, cfg Config) ([]*RankState, error) {
	if size < 1 {
		return nil, fmt.Errorf("keys: communicator size %d < 1", size)
	}
	cfg.fill()

	starting := make([]uint64, size)
	var group prf.PRF
	if cfg.SharedGroup {
		kg := make([]byte, KeyBytes)
		if _, err := io.ReadFull(cfg.Rand, kg); err != nil {
			return nil, fmt.Errorf("keys: drawing k_g: %w", err)
		}
		g, err := prf.New(cfg.Backend, kg)
		if err != nil {
			return nil, fmt.Errorf("keys: constructing G_{k_g}: %w", err)
		}
		group = g
		for i := range starting {
			starting[i] = g.Uint64(rankKeyDomain, uint64(i))
		}
	} else {
		for i := range starting {
			v, err := randUint64(cfg.Rand)
			if err != nil {
				return nil, err
			}
			starting[i] = v
		}
	}
	kc, err := randUint64(cfg.Rand)
	if err != nil {
		return nil, err
	}
	ke := make([]byte, KeyBytes)
	if _, err := io.ReadFull(cfg.Rand, ke); err != nil {
		return nil, fmt.Errorf("keys: drawing k_e: %w", err)
	}
	kp := make([]byte, KeyBytes)
	if _, err := io.ReadFull(cfg.Rand, kp); err != nil {
		return nil, fmt.Errorf("keys: drawing k_p: %w", err)
	}

	states := make([]*RankState, size)
	for i := 0; i < size; i++ {
		enc, err := prf.New(cfg.Backend, ke)
		if err != nil {
			return nil, fmt.Errorf("keys: constructing F_{k_e}: %w", err)
		}
		prog, err := prf.New(cfg.Backend, kp)
		if err != nil {
			return nil, fmt.Errorf("keys: constructing F_{k_p}: %w", err)
		}
		states[i] = &RankState{
			Rank:       i,
			Size:       size,
			SelfKey:    starting[i],
			NextKey:    starting[(i+1)%size],
			RootKey:    starting[0],
			collective: kc,
			Enc:        enc,
			prog:       prog,
			group:      group,
		}
	}
	return states, nil
}

// CanDeriveRankKeys reports whether this state was generated under the
// shared-group policy and can therefore reconstruct any rank's starting
// key — the precondition for subset-noise cancellation in degraded rounds.
func (s *RankState) CanDeriveRankKeys() bool { return s.group != nil }

// RankKey returns rank r's starting key k_s_r, derivable only under the
// shared-group policy.
func (s *RankState) RankKey(rank int) (uint64, error) {
	if s.group == nil {
		return 0, fmt.Errorf("keys: rank keys not derivable (independent starting keys; generate with Config.SharedGroup)")
	}
	if rank < 0 || rank >= s.Size {
		return 0, fmt.Errorf("keys: rank %d out of range [0,%d)", rank, s.Size)
	}
	return s.group.Uint64(rankKeyDomain, uint64(rank)), nil
}

// RankNonce returns rank r's stream identifier k_s_r + k_c at the current
// epoch — the nonce of the noise stream rank r would have used this
// collective. Degraded rounds use it to fold a missing rank's telescoping
// noise back into a partial aggregate.
func (s *RankState) RankNonce(rank int) (uint64, error) {
	k, err := s.RankKey(rank)
	if err != nil {
		return 0, err
	}
	return k + s.collective, nil
}

// Advance progresses the collective key, k_c ← F_{k_p}(k_c). Every rank
// calls it once at the start of each Allreduce; because k_p and the initial
// k_c are shared, all ranks stay in lockstep without communication.
func (s *RankState) Advance() {
	s.collective = s.prog.Uint64(s.collective, 0)
	s.epoch++
}

// PeekAdvance returns the collective key and epoch the next Advance call
// will install, without mutating the schedule. Because the progression is
// deterministic (k_c ← F_{k_p}(k_c)), the nonces of collective t+1 are
// fully determined the moment collective t begins — the property the noise
// prefetcher (internal/noise) uses to generate next-epoch keystream while
// the current collective is still in flight. Like Advance, it requires a
// progression PRF (states from NewManual with a nil prog cannot peek).
func (s *RankState) PeekAdvance() (collective, epoch uint64) {
	return s.prog.Uint64(s.collective, 0), s.epoch + 1
}

// Epoch counts the Advance calls applied so far. Because every rank starts
// from the same k_c and k_p, two states agree on k_c exactly when they
// agree on the epoch — which makes the counter a safe-to-share coherence
// token: recovery protocols exchange epochs (never keys) to detect and heal
// a rank that fell behind the group's key schedule.
func (s *RankState) Epoch() uint64 { return s.epoch }

// Collective returns the current k_c.
func (s *RankState) Collective() uint64 { return s.collective }

// SelfNonce is the stream identifier k_s_i + k_c for this rank's noise.
func (s *RankState) SelfNonce() uint64 { return s.SelfKey + s.collective }

// NextNonce is k_s_{i+1} + k_c, the canceling stream.
func (s *RankState) NextNonce() uint64 { return s.NextKey + s.collective }

// RootNonce is k_s_0 + k_c, the stream that survives the telescoping sum
// and is subtracted (divided, XORed) out at decryption.
func (s *RankState) RootNonce() uint64 { return s.RootKey + s.collective }

// CollectiveNonce is k_c itself, used by the float v1 addition scheme whose
// noise (eq. 7) depends only on the collective key — the documented reason
// that scheme lacks global safety.
func (s *RankState) CollectiveNonce() uint64 { return s.collective }

// IsLast reports whether this rank is P−1, the rank whose noise term is
// not canceled (eqs. 1–3) or that carries the plain noise factor (eq. 6).
func (s *RankState) IsLast() bool { return s.Rank == s.Size-1 }

// NewManual constructs a RankState from explicit key material. It exists
// for tests and for reproducing the paper's Table 3 worked examples with
// chosen noise; production code uses Generate. prog may be nil when the
// caller never calls Advance.
func NewManual(rank, size int, self, next, root, kc uint64, enc, prog prf.PRF) *RankState {
	return &RankState{
		Rank:       rank,
		Size:       size,
		SelfKey:    self,
		NextKey:    next,
		RootKey:    root,
		collective: kc,
		Enc:        enc,
		prog:       prog,
	}
}

func randUint64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("keys: drawing key: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
