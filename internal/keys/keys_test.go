package keys

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// seqReader is a deterministic entropy source for tests.
type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next
		r.next++
	}
	return len(p), nil
}

func TestGenerateRejectsBadSize(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := Generate(n, Config{}); err == nil {
			t.Errorf("size %d accepted", n)
		}
	}
}

func TestGenerateKeyTopology(t *testing.T) {
	const P = 7
	states, err := Generate(P, Config{Rand: &seqReader{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != P {
		t.Fatalf("got %d states", len(states))
	}
	for i, s := range states {
		if s.Rank != i || s.Size != P {
			t.Errorf("rank %d: identity fields %d/%d", i, s.Rank, s.Size)
		}
		if s.NextKey != states[(i+1)%P].SelfKey {
			t.Errorf("rank %d: NextKey is not rank %d's SelfKey", i, (i+1)%P)
		}
		if s.RootKey != states[0].SelfKey {
			t.Errorf("rank %d: RootKey is not rank 0's SelfKey", i)
		}
		if s.Collective() != states[0].Collective() {
			t.Errorf("rank %d: collective key differs from rank 0", i)
		}
	}
	if states[P-1].IsLast() != true || states[0].IsLast() != false {
		t.Error("IsLast wrong")
	}
}

func TestStartingKeysAreDistinct(t *testing.T) {
	states, err := Generate(16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, s := range states {
		if seen[s.SelfKey] {
			t.Fatal("duplicate starting key (p ~ 2^-60, so this is a bug)")
		}
		seen[s.SelfKey] = true
	}
}

func TestAdvanceKeepsRanksInLockstep(t *testing.T) {
	states, err := Generate(5, Config{Rand: &seqReader{}})
	if err != nil {
		t.Fatal(err)
	}
	before := states[0].Collective()
	for _, s := range states {
		s.Advance()
	}
	after := states[0].Collective()
	if after == before {
		t.Error("Advance did not change k_c")
	}
	for _, s := range states {
		if s.Collective() != after {
			t.Error("ranks diverged after Advance")
		}
	}
	// Nonces telescope consistently after progression.
	for i, s := range states {
		if s.NextNonce() != states[(i+1)%5].SelfNonce() {
			t.Errorf("rank %d: NextNonce != successor's SelfNonce", i)
		}
		if s.RootNonce() != states[0].SelfNonce() {
			t.Errorf("rank %d: RootNonce != rank 0's SelfNonce", i)
		}
	}
}

// TestPeekAdvanceIsSideEffectFree pins the prefetcher's contract: peeking
// predicts exactly what the next Advance installs, any number of times,
// without moving the schedule.
func TestPeekAdvanceIsSideEffectFree(t *testing.T) {
	states, err := Generate(3, Config{Rand: &seqReader{next: 5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		for round := 0; round < 4; round++ {
			kcBefore, epochBefore := st.Collective(), st.Epoch()
			peekKC, peekEpoch := st.PeekAdvance()
			if kc2, e2 := st.PeekAdvance(); kc2 != peekKC || e2 != peekEpoch {
				t.Fatalf("rank %d round %d: PeekAdvance not idempotent", st.Rank, round)
			}
			if st.Collective() != kcBefore || st.Epoch() != epochBefore {
				t.Fatalf("rank %d round %d: PeekAdvance mutated the schedule", st.Rank, round)
			}
			st.Advance()
			if st.Collective() != peekKC || st.Epoch() != peekEpoch {
				t.Fatalf("rank %d round %d: Advance gave (kc=%d, epoch=%d), peek predicted (%d, %d)",
					st.Rank, round, st.Collective(), st.Epoch(), peekKC, peekEpoch)
			}
		}
	}
}

func TestAdvanceIsNonRepeatingShortTerm(t *testing.T) {
	states, err := Generate(1, Config{Rand: &seqReader{}})
	if err != nil {
		t.Fatal(err)
	}
	s := states[0]
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		if seen[s.Collective()] {
			t.Fatalf("k_c repeated after %d advances", i)
		}
		seen[s.Collective()] = true
		s.Advance()
	}
}

func TestDeterministicRandGivesReproducibleKeys(t *testing.T) {
	a, err := Generate(3, Config{Rand: &seqReader{}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(3, Config{Rand: &seqReader{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].SelfKey != b[i].SelfKey || a[i].Collective() != b[i].Collective() {
			t.Fatal("same entropy produced different keys")
		}
	}
}

func TestEncPRFSharedAcrossRanks(t *testing.T) {
	states, err := Generate(4, Config{Rand: &seqReader{}})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks hold the same k_e: keystreams must agree.
	a := make([]byte, 64)
	b := make([]byte, 64)
	states[0].Enc.Keystream(a, 1, 0)
	states[3].Enc.Keystream(b, 1, 0)
	if !bytes.Equal(a, b) {
		t.Error("F_{k_e} differs between ranks")
	}
}

type failReader struct{}

func (failReader) Read([]byte) (int, error) { return 0, errors.New("no entropy") }

func TestGenerateSurfacesEntropyFailure(t *testing.T) {
	if _, err := Generate(2, Config{Rand: failReader{}}); err == nil {
		t.Error("entropy failure not surfaced")
	}
}

type shortReader struct{ n int }

func (r *shortReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	k := r.n
	if k > len(p) {
		k = len(p)
	}
	r.n -= k
	return k, nil
}

func TestGenerateSurfacesShortEntropy(t *testing.T) {
	if _, err := Generate(4, Config{Rand: &shortReader{n: 10}}); err == nil {
		t.Error("short entropy not surfaced")
	}
}
