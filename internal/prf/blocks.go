package prf

import (
	"crypto/cipher"
	"encoding/binary"
)

// This file is the streaming half of the PRF layer: instead of
// materializing a whole keystream plane into a destination buffer
// (Keystream) and combining it with the data in a second pass, a
// BlockSource yields the same bytes as consecutive 64-byte blocks that the
// fused scheme kernels (internal/core) consume and combine in a single
// cache-blocked loop. The keystream never round-trips through memory: a
// source stages at most sourceBufBytes (1 KiB, L1-resident) at a time, so
// the only DRAM traffic of a fused kernel is the plaintext read and the
// ciphertext write. HEAAN Demystified makes the general argument that HE
// pipelines are memory-bandwidth-bound and win by fusing stages; this is
// that argument applied to HEAR's CTR-keystream cipher.
//
// Bit-identity: a BlockSource produces exactly the bytes
// Keystream(dst, nonce, off) would place at the same offsets, for every
// backend — the cross-backend span-equivalence tests pin this, and it is
// what makes the fused kernels bit-identical to the two-pass reference.

// BlockBytes is the streaming block granularity of the fused kernels:
// 64 bytes — the native ChaCha20 block and four AES blocks. Every scheme's
// per-element keystream stride (1, 2, 4, 8, or hfp.NoiseBytes = 16 bytes)
// divides it, so ciphertext elements never straddle a block boundary.
const BlockBytes = 64

// sourceBufBytes is the staging capacity of one BlockSource: 16 blocks.
// Large enough to amortize per-refill overhead (one bulk backend call per
// KiB), small enough that two live sources (self + canceling stream) stay
// resident in L1 next to the plaintext and ciphertext lines they are fused
// with.
const sourceBufBytes = 16 * BlockBytes

// ctrCutoff is the span size at or below which the AES-fast backend
// streams via direct block encryptions instead of constructing a
// cipher.NewCTR stream — the same trade Keystream's small-message fast
// path makes: for one streaming block, the CTR object's allocation and
// setup cost more than they save.
const ctrCutoff = BlockBytes

// SpanCache is implemented by caching PRF wrappers — the noise
// prefetcher's cache-backed PRF (internal/noise) — that may hold
// pre-generated keystream planes. Fused kernels probe it to split a span
// into a cached prefix, which they read through Keystream (the wrapper's
// hit-accounted copy path), and a tail they generate block-by-block
// directly on the Generator backend.
type SpanCache interface {
	PRF
	// CachedSpan reports the length in bytes of the longest currently
	// cached prefix of span [off, off+n) of stream nonce, and accounts the
	// remainder as cache misses (the caller generates it on Generator's
	// stream, bypassing the wrapper).
	CachedSpan(nonce, off uint64, n int) int
	// Generator returns the live backend PRF the cache falls through to.
	Generator() PRF
}

// blockAtter is the 16-byte random-access block form the AES, SHA1, and
// xorshift backends implement. BlockSource stores the receiver behind this
// interface instead of binding a method closure, which keeps Init
// allocation-free.
type blockAtter interface {
	blockAt(dst *[BlockSize]byte, nonce, blockIdx uint64)
}

// sourceKind selects a BlockSource's refill strategy.
type sourceKind uint8

const (
	// kindGeneric refills through the backend's own Keystream — correct
	// for any PRF; used for wrappers and backends with no faster path.
	kindGeneric sourceKind = iota
	// kindBlockFn refills through a 16-byte blockFunc — the scalar AES,
	// SHA1, and xorshift backends, and small AES-fast spans.
	kindBlockFn
	// kindChaCha serializes ChaCha cores straight into the staging buffer,
	// skipping the copy Keystream's bulk path performs per block.
	kindChaCha
	// kindCTR drives one persistent cipher.Stream (AES-NI pipelined
	// assembly), constructed once per source — the same single allocation
	// the two-pass path pays per bulk Keystream call.
	kindCTR
)

// BlockSource streams consecutive BlockBytes-sized keystream blocks of one
// stream, starting at an arbitrary byte offset. The zero value is not
// valid; initialize with Init (or KeystreamBlocks). A source is a plain
// value — no retained references, safe to keep on the stack — and is NOT
// safe for concurrent use.
type BlockSource struct {
	kind  sourceKind
	nonce uint64
	off   uint64 // stream byte offset of the next refill (block-aligned)
	left  int    // span bytes not yet generated (generation budget)
	pos   int    // read position in buf
	avail int    // valid bytes in buf

	generic PRF           // kindGeneric
	fn      blockAtter    // kindBlockFn
	ch      *chachaPRF    // kindChaCha
	ctr     cipher.Stream // kindCTR

	buf [sourceBufBytes]byte
}

// KeystreamBlocks returns a BlockSource positioned at byte offset off of
// stream nonce, sized to serve total bytes (generation never runs more
// than one block past off+total). Consuming the source block-by-block
// yields exactly the bytes Keystream(dst, nonce, off) with len(dst) ≥
// total would produce. Prefer declaring a BlockSource and calling Init on
// it where the 1 KiB staging buffer should stay on the caller's stack.
func KeystreamBlocks(p PRF, nonce, off uint64, total int) *BlockSource {
	b := new(BlockSource)
	b.Init(p, nonce, off, total)
	return b
}

// Init (re)positions the source at byte offset off of stream nonce,
// expecting to serve total bytes. It performs the initial fill, so the
// head block — including any unaligned prefix — is ready for the first
// Next call.
func (b *BlockSource) Init(p PRF, nonce, off uint64, total int) {
	if total < 0 {
		total = 0
	}
	b.nonce = nonce
	b.pos = 0
	b.avail = 0

	// Align the stream cursor down to a block boundary; the inner offset
	// becomes the initial read position, so Next's first block starts at
	// exactly off.
	base := off &^ (BlockBytes - 1)
	inner := int(off - base)
	b.off = base
	b.left = roundUpBlock(inner + total)

	switch p := p.(type) {
	case *chachaPRF:
		b.kind = kindChaCha
		b.ch = p
	case *aesFast:
		if b.left <= ctrCutoff {
			// Small span: direct block encryptions, like Keystream's
			// small-message fast path — no CTR construction, no allocation.
			b.kind = kindBlockFn
			b.fn = p
		} else {
			b.kind = kindCTR
			var iv [BlockSize]byte
			binary.BigEndian.PutUint64(iv[0:8], nonce)
			binary.BigEndian.PutUint64(iv[8:16], base/BlockSize)
			b.ctr = cipher.NewCTR(p.block, iv[:])
		}
	case blockAtter: // aesScalar, sha1PRF, xorshiftPRF
		b.kind = kindBlockFn
		b.fn = p
	default:
		b.kind = kindGeneric
		b.generic = p
	}

	b.fill()
	b.pos = inner
}

// Next returns the next BlockBytes keystream bytes. The returned block is
// valid until the following Next call. Reading past the total declared at
// Init stays correct (the stream simply continues) but generates in
// single-block steps.
func (b *BlockSource) Next() *[BlockBytes]byte {
	if b.pos+BlockBytes > b.avail {
		b.refill()
	}
	p := (*[BlockBytes]byte)(b.buf[b.pos:])
	b.pos += BlockBytes
	return p
}

// refill compacts the unread tail (at most BlockBytes−1 bytes of a block
// split by the buffer end — only when the source started unaligned) to the
// front and generates the next run of whole blocks behind it.
func (b *BlockSource) refill() {
	tail := copy(b.buf[:], b.buf[b.pos:b.avail])
	b.pos = 0
	b.avail = tail
	b.fill()
}

// fill appends whole keystream blocks at the stream cursor to buf[avail:],
// bounded by the staging capacity and the remaining span budget.
func (b *BlockSource) fill() {
	g := (len(b.buf) - b.avail) &^ (BlockBytes - 1)
	if b.left < g {
		g = b.left
	}
	if g < BlockBytes {
		g = BlockBytes // consumer read past the declared total
	}
	region := b.buf[b.avail : b.avail+g]
	switch b.kind {
	case kindChaCha:
		for i := 0; i < g; i += chachaBlockBytes {
			st := b.ch.state(b.nonce, (b.off+uint64(i))/chachaBlockBytes)
			chachaCore(&st, (*[chachaBlockBytes]byte)(region[i:]))
		}
	case kindCTR:
		for i := range region {
			region[i] = 0
		}
		b.ctr.XORKeyStream(region, region)
	case kindBlockFn:
		for i := 0; i < g; i += BlockSize {
			b.fn.blockAt((*[BlockSize]byte)(region[i:]), b.nonce, (b.off+uint64(i))/BlockSize)
		}
	default:
		b.generic.Keystream(region, b.nonce, b.off)
	}
	b.avail += g
	b.off += uint64(g)
	if b.left -= g; b.left < 0 {
		b.left = 0
	}
}

// roundUpBlock rounds n up to the next multiple of BlockBytes.
func roundUpBlock(n int) int {
	return (n + BlockBytes - 1) &^ (BlockBytes - 1)
}
