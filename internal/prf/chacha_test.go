package prf

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
)

// RFC 8439 §2.3.2 test vector: the ChaCha20 block function with the
// canonical key/nonce/counter. The RFC uses the IETF layout (32-bit
// counter + 96-bit nonce); the test assembles that state directly, so it
// pins the rounds/serialization core independent of this package's djb
// addressing.
func TestChaChaCoreRFC8439Vector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce, _ := hex.DecodeString("000000090000004a00000000")
	var state [16]uint32
	state[0], state[1], state[2], state[3] = sigma[0], sigma[1], sigma[2], sigma[3]
	for i := 0; i < 8; i++ {
		state[4+i] = binary.LittleEndian.Uint32(key[i*4:])
	}
	state[12] = 1 // block counter
	for i := 0; i < 3; i++ {
		state[13+i] = binary.LittleEndian.Uint32(nonce[i*4:])
	}
	var out [chachaBlockBytes]byte
	chachaCore(&state, &out)
	want, _ := hex.DecodeString(
		"10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e" +
			"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(out[:], want) {
		t.Fatalf("chacha core mismatch:\n got %x\nwant %x", out, want)
	}
}

// RFC 8439 §2.1.1 quarter-round test vector.
func TestQuarterRoundRFC8439Vector(t *testing.T) {
	a, b, c, d := quarterRound(0x11111111, 0x01020304, 0x9b8d6f43, 0x01234567)
	if a != 0xea2a92f4 || b != 0xcb1cf8ce || c != 0x4581472e || d != 0x5881c4bb {
		t.Fatalf("quarter round: %08x %08x %08x %08x", a, b, c, d)
	}
}

func TestChaChaKeySizes(t *testing.T) {
	if _, err := NewChaCha20(make([]byte, 32)); err != nil {
		t.Errorf("32-byte key rejected: %v", err)
	}
	if _, err := NewChaCha20(make([]byte, 16)); err != nil {
		t.Errorf("16-byte key rejected: %v", err)
	}
	if _, err := NewChaCha20(make([]byte, 24)); err == nil {
		t.Error("24-byte key accepted")
	}
}

func TestChaChaKeystreamConsistency(t *testing.T) {
	p, err := New(BackendChaCha20, testKey)
	if err != nil {
		t.Fatal(err)
	}
	full := make([]byte, 512)
	p.Keystream(full, 77, 0)
	// Offset spans must agree with the full stream (crossing 64-byte
	// ChaCha block boundaries and 16-byte sub-block boundaries).
	for _, off := range []uint64{0, 1, 15, 16, 60, 64, 65, 130, 250} {
		span := make([]byte, 48)
		p.Keystream(span, 77, off)
		if !bytes.Equal(span, full[off:off+48]) {
			t.Errorf("offset %d span mismatch", off)
		}
	}
	// Point queries must match keystream words.
	for idx := uint64(0); idx < 32; idx++ {
		want := binary.LittleEndian.Uint64(full[idx*8:])
		if got := p.Uint64(77, idx); got != want {
			t.Errorf("idx %d: %#x != %#x", idx, got, want)
		}
	}
}

func TestChaChaDistinctFromAES(t *testing.T) {
	cc, _ := New(BackendChaCha20, testKey)
	aes, _ := New(BackendAESFast, testKey)
	a := make([]byte, 64)
	b := make([]byte, 64)
	cc.Keystream(a, 1, 0)
	aes.Keystream(b, 1, 0)
	if bytes.Equal(a, b) {
		t.Error("chacha and AES keystreams identical (impossible)")
	}
}

func BenchmarkKeystreamChaCha64K(b *testing.B) { benchmarkKeystream(b, BackendChaCha20, 64<<10) }
