// Package prf provides the pseudorandom functions HEAR derives its noise
// from (§5 of the paper: "F needs to be a cryptographically secure PRF such
// as AES"). A PRF is keyed once at construction (the encryption key k_e)
// and evaluated on inputs of the form k_s_i + k_c + j. Because j runs over
// consecutive vector indices, evaluation maps naturally onto a counter-mode
// keystream: the stream is identified by a 64-bit nonce (k_s_i + k_c) and
// the word at index j is F_{k_e}(nonce, j).
//
// Backends mirror the paper's Figure 4/5 candidates:
//
//   - AES-CTR "fast" (stdlib crypto/aes + cipher.NewCTR, which uses the
//     hardware AES-NI and pipelined multi-block assembly — the analogue of
//     the paper's hand-tuned AES-NI + SSE2 implementation),
//   - AES-CTR "scalar" (one block at a time — the analogue of the
//     non-vectorized AES-NI version),
//   - SHA1-counter (the OpenSSL SHA1 baseline the paper rejects),
//   - xorshift (insecure; a lower bound on noise-generation cost used only
//     by ablation benchmarks, never by the schemes).
package prf

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// BlockSize is the keystream block granularity in bytes. All backends
// expose a 16-byte block layout so that ciphertext words land at identical
// offsets regardless of backend.
const BlockSize = 16

// PRF is a keyed pseudorandom function evaluated as a random-access
// keystream. Implementations must be safe for concurrent use by multiple
// goroutines after construction.
type PRF interface {
	// Name identifies the backend in benchmark output.
	Name() string
	// Keystream writes len(dst) bytes of the stream identified by nonce,
	// starting at byte offset off. Equal (nonce, off) always yields equal
	// bytes; streams with different nonces are computationally independent.
	Keystream(dst []byte, nonce, off uint64)
	// Uint64 returns the 64-bit little-endian word at word index idx of the
	// stream, i.e. bytes [8*idx, 8*idx+8). This is the point-query form
	// F_{k_e}(k_s + k_c + j) used by decryption.
	Uint64(nonce, idx uint64) uint64
}

// blockFunc computes the 16-byte keystream block blockIdx of stream nonce.
type blockFunc func(dst *[BlockSize]byte, nonce, blockIdx uint64)

// genericKeystream assembles an arbitrary (offset, length) keystream span
// from a block function. Backends with no bulk path use it directly.
func genericKeystream(dst []byte, nonce, off uint64, f blockFunc) {
	var block [BlockSize]byte
	for len(dst) > 0 {
		blockIdx := off / BlockSize
		inner := off % BlockSize
		f(&block, nonce, blockIdx)
		n := copy(dst, block[inner:])
		dst = dst[n:]
		off += uint64(n)
	}
}

// genericUint64 extracts word idx via the block function.
func genericUint64(nonce, idx uint64, f blockFunc) uint64 {
	var block [BlockSize]byte
	f(&block, nonce, idx/2)
	return binary.LittleEndian.Uint64(block[(idx%2)*8:])
}

// --- AES backends ---

type aesScalar struct {
	block cipher.Block
}

// NewAESScalar returns the one-block-at-a-time AES-CTR PRF. key must be
// 16, 24, or 32 bytes (AES-128/192/256).
func NewAESScalar(key []byte) (PRF, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("prf: aes key: %w", err)
	}
	return &aesScalar{block: b}, nil
}

func (p *aesScalar) Name() string { return "aes-ctr-scalar" }

func (p *aesScalar) blockAt(dst *[BlockSize]byte, nonce, blockIdx uint64) {
	var in [BlockSize]byte
	binary.BigEndian.PutUint64(in[0:8], nonce)
	binary.BigEndian.PutUint64(in[8:16], blockIdx)
	p.block.Encrypt(dst[:], in[:])
}

func (p *aesScalar) Keystream(dst []byte, nonce, off uint64) {
	genericKeystream(dst, nonce, off, p.blockAt)
}

func (p *aesScalar) Uint64(nonce, idx uint64) uint64 {
	return genericUint64(nonce, idx, p.blockAt)
}

type aesFast struct {
	aesScalar // reuse the block function for point queries
}

// NewAESFast returns the bulk AES-CTR PRF built on cipher.NewCTR, which
// dispatches to the pipelined hardware-AES assembly in the Go runtime.
// Bulk keystream bytes are bit-identical to the scalar backend's.
func NewAESFast(key []byte) (PRF, error) {
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("prf: aes key: %w", err)
	}
	return &aesFast{aesScalar{block: b}}, nil
}

func (p *aesFast) Name() string { return "aes-ctr-fast" }

func (p *aesFast) Keystream(dst []byte, nonce, off uint64) {
	// Small-message fast path: constructing a CTR stream object allocates
	// and costs more than a handful of direct block encryptions. 16 B
	// Allreduce latency (Figure 4) lives or dies on this branch.
	if len(dst) <= 4*BlockSize {
		genericKeystream(dst, nonce, off, p.blockAt)
		return
	}
	// Align the CTR stream to the enclosing block range, then slice out the
	// requested span. cipher.NewCTR increments the full 16-byte IV as a
	// big-endian counter, so an IV of nonce||blockIdx walks blockIdx first —
	// identical to the scalar layout until 2^64 blocks per nonce, far above
	// any message size.
	firstBlock := off / BlockSize
	inner := int(off % BlockSize)
	var iv [BlockSize]byte
	binary.BigEndian.PutUint64(iv[0:8], nonce)
	binary.BigEndian.PutUint64(iv[8:16], firstBlock)
	ctr := cipher.NewCTR(p.block, iv[:])
	if inner == 0 {
		for i := range dst {
			dst[i] = 0
		}
		ctr.XORKeyStream(dst, dst)
		return
	}
	// Unaligned start: dst is pure output, so synthesize the head block in
	// dst[:BlockSize] (the branch above the small-message cutoff guarantees
	// the room), slide the bytes from inner on to the front, and let the
	// same CTR stream continue over the remainder — no per-call heap span,
	// which matters because the engine's sharded paths land on this branch
	// whenever a shard boundary splits a block.
	for i := range dst[:BlockSize] {
		dst[i] = 0
	}
	ctr.XORKeyStream(dst[:BlockSize], dst[:BlockSize])
	n := copy(dst, dst[inner:BlockSize])
	rest := dst[n:]
	for i := range rest {
		rest[i] = 0
	}
	ctr.XORKeyStream(rest, rest)
}

// --- SHA1 backend ---

type sha1PRF struct {
	key []byte
}

// NewSHA1 returns the SHA1-counter PRF: block i of stream nonce is the
// first 16 bytes of SHA1(key || nonce || i). This mirrors the paper's
// OpenSSL-SHA1 libhear variant, which it rejects for line-rate use.
func NewSHA1(key []byte) PRF {
	k := make([]byte, len(key))
	copy(k, key)
	return &sha1PRF{key: k}
}

func (p *sha1PRF) Name() string { return "sha1-ctr" }

func (p *sha1PRF) blockAt(dst *[BlockSize]byte, nonce, blockIdx uint64) {
	h := sha1.New()
	h.Write(p.key)
	var in [16]byte
	binary.BigEndian.PutUint64(in[0:8], nonce)
	binary.BigEndian.PutUint64(in[8:16], blockIdx)
	h.Write(in[:])
	var sum [sha1.Size]byte
	h.Sum(sum[:0])
	copy(dst[:], sum[:BlockSize])
}

func (p *sha1PRF) Keystream(dst []byte, nonce, off uint64) {
	genericKeystream(dst, nonce, off, p.blockAt)
}

func (p *sha1PRF) Uint64(nonce, idx uint64) uint64 {
	return genericUint64(nonce, idx, p.blockAt)
}

// --- xorshift backend (INSECURE) ---

type xorshiftPRF struct {
	key uint64
}

// NewXorshift returns a statistically-random but cryptographically
// worthless PRF based on splitmix64 finalization. It exists only to bound
// the cost of noise generation in ablation benchmarks; the schemes refuse
// to accept it unless explicitly configured for benchmarking.
func NewXorshift(key uint64) PRF { return &xorshiftPRF{key: key} }

func (p *xorshiftPRF) Name() string { return "xorshift-insecure" }

func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (p *xorshiftPRF) wordAt(nonce, idx uint64) uint64 {
	return mix64(p.key ^ mix64(nonce) + idx*0x9E3779B97F4A7C15)
}

func (p *xorshiftPRF) blockAt(dst *[BlockSize]byte, nonce, blockIdx uint64) {
	binary.LittleEndian.PutUint64(dst[0:8], p.wordAt(nonce, blockIdx*2))
	binary.LittleEndian.PutUint64(dst[8:16], p.wordAt(nonce, blockIdx*2+1))
}

func (p *xorshiftPRF) Keystream(dst []byte, nonce, off uint64) {
	genericKeystream(dst, nonce, off, p.blockAt)
}

func (p *xorshiftPRF) Uint64(nonce, idx uint64) uint64 {
	return genericUint64(nonce, idx, p.blockAt)
}

// Backend names accepted by New.
const (
	BackendAESFast   = "aes-ctr-fast"
	BackendAESScalar = "aes-ctr-scalar"
	BackendSHA1      = "sha1-ctr"
	BackendChaCha20  = "chacha20"
	BackendXorshift  = "xorshift-insecure"
)

// New constructs a backend by name. key is the PRF key k_e; AES backends
// require 16/24/32 bytes, the others accept any non-empty key.
func New(backend string, key []byte) (PRF, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("prf: empty key")
	}
	switch backend {
	case BackendAESFast:
		return NewAESFast(key)
	case BackendAESScalar:
		return NewAESScalar(key)
	case BackendSHA1:
		return NewSHA1(key), nil
	case BackendChaCha20:
		return NewChaCha20(key)
	case BackendXorshift:
		return NewXorshift(binary.LittleEndian.Uint64(pad8(key))), nil
	default:
		return nil, fmt.Errorf("prf: unknown backend %q", backend)
	}
}

func pad8(key []byte) []byte {
	if len(key) >= 8 {
		return key[:8]
	}
	out := make([]byte, 8)
	copy(out, key)
	return out
}
