package prf

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

var testKey = []byte("0123456789abcdef")

func backends(t *testing.T) []PRF {
	t.Helper()
	var out []PRF
	for _, name := range []string{BackendAESFast, BackendAESScalar, BackendSHA1, BackendChaCha20, BackendXorshift} {
		p, err := New(name, testKey)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		out = append(out, p)
	}
	return out
}

func TestNewRejectsEmptyKey(t *testing.T) {
	if _, err := New(BackendAESFast, nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestNewRejectsUnknownBackend(t *testing.T) {
	if _, err := New("rot13", testKey); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestNewRejectsBadAESKeyLength(t *testing.T) {
	if _, err := New(BackendAESFast, []byte("short")); err == nil {
		t.Error("5-byte AES key accepted")
	}
}

// Keystream must be deterministic and offset-consistent: reading
// [off, off+n) must equal the same span of a read from 0.
func TestKeystreamOffsetConsistency(t *testing.T) {
	for _, p := range backends(t) {
		t.Run(p.Name(), func(t *testing.T) {
			full := make([]byte, 1024)
			p.Keystream(full, 42, 0)
			for _, off := range []uint64{0, 1, 7, 8, 15, 16, 17, 100, 512, 1000} {
				span := make([]byte, 24)
				p.Keystream(span, 42, off)
				if !bytes.Equal(span, full[off:off+24]) {
					t.Errorf("offset %d: span mismatch", off)
				}
			}
		})
	}
}

func TestUint64MatchesKeystream(t *testing.T) {
	for _, p := range backends(t) {
		t.Run(p.Name(), func(t *testing.T) {
			full := make([]byte, 256)
			p.Keystream(full, 7, 0)
			for idx := uint64(0); idx < 32; idx++ {
				want := binary.LittleEndian.Uint64(full[idx*8:])
				if got := p.Uint64(7, idx); got != want {
					t.Errorf("idx %d: Uint64 = %#x, keystream word = %#x", idx, got, want)
				}
			}
		})
	}
}

func TestNoncesProduceDistinctStreams(t *testing.T) {
	for _, p := range backends(t) {
		t.Run(p.Name(), func(t *testing.T) {
			a := make([]byte, 64)
			b := make([]byte, 64)
			p.Keystream(a, 1, 0)
			p.Keystream(b, 2, 0)
			if bytes.Equal(a, b) {
				t.Error("streams for distinct nonces are identical")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, p := range backends(t) {
		t.Run(p.Name(), func(t *testing.T) {
			f := func(nonce, off uint64, n uint8) bool {
				a := make([]byte, int(n)+1)
				b := make([]byte, int(n)+1)
				p.Keystream(a, nonce, off)
				p.Keystream(b, nonce, off)
				return bytes.Equal(a, b)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}

// The fast and scalar AES backends must be bit-identical: they are the
// same PRF at two optimization levels, and the schemes mix them (bulk
// encrypt via fast, point-query decrypt via the block function).
func TestAESFastMatchesScalar(t *testing.T) {
	fast, err := NewAESFast(testKey)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := NewAESScalar(testKey)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []uint64{0, 3, 16, 33} {
		a := make([]byte, 513)
		b := make([]byte, 513)
		fast.Keystream(a, 99, off)
		scalar.Keystream(b, 99, off)
		if !bytes.Equal(a, b) {
			t.Fatalf("off %d: fast and scalar AES keystreams differ", off)
		}
	}
}

// Cross-check the AES-CTR construction against a direct stdlib CTR stream:
// block i of stream nonce must be AES_k(nonce || i).
func TestAESMatchesStdlibCTR(t *testing.T) {
	p, err := NewAESScalar(testKey)
	if err != nil {
		t.Fatal(err)
	}
	blockCipher, err := aes.NewCipher(testKey)
	if err != nil {
		t.Fatal(err)
	}
	var iv [16]byte
	binary.BigEndian.PutUint64(iv[0:8], 5)
	binary.BigEndian.PutUint64(iv[8:16], 0)
	want := make([]byte, 160)
	cipher.NewCTR(blockCipher, iv[:]).XORKeyStream(want, want)
	got := make([]byte, 160)
	p.Keystream(got, 5, 0)
	if !bytes.Equal(got, want) {
		t.Error("manual CTR layout disagrees with cipher.NewCTR")
	}
}

// A crude monobit/byte-frequency sanity check: keystream bytes should look
// uniform. This is not a security proof, just a tripwire against layout
// bugs (e.g. zero blocks from a mis-set counter).
func TestKeystreamLooksUniform(t *testing.T) {
	for _, p := range backends(t) {
		t.Run(p.Name(), func(t *testing.T) {
			const n = 1 << 16
			buf := make([]byte, n)
			p.Keystream(buf, 1234, 0)
			var counts [256]int
			ones := 0
			for _, b := range buf {
				counts[b]++
				for x := b; x != 0; x &= x - 1 {
					ones++
				}
			}
			// chi^2 over byte values; 255 dof, mean 255, sd ~22.6. Allow 6 sd.
			expected := float64(n) / 256
			chi2 := 0.0
			for _, c := range counts {
				d := float64(c) - expected
				chi2 += d * d / expected
			}
			if chi2 > 255+6*math.Sqrt(2*255) {
				t.Errorf("chi2 = %.1f, too high for uniform bytes", chi2)
			}
			bitFrac := float64(ones) / float64(n*8)
			if math.Abs(bitFrac-0.5) > 0.01 {
				t.Errorf("bit fraction = %.4f, want ~0.5", bitFrac)
			}
		})
	}
}

// TestAESFastUnalignedKeystreamAllocs pins the bulk path's unaligned
// branch at the same allocation count as the aligned one: the head block
// is synthesized inside dst and the CTR stream continues in place, instead
// of a transient inner+len(dst) heap span per call.
func TestAESFastUnalignedKeystreamAllocs(t *testing.T) {
	p, err := NewAESFast(testKey)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 8192)
	aligned := testing.AllocsPerRun(200, func() { p.Keystream(dst, 42, 0) })
	for _, off := range []uint64{1, 5, 15, 17, 31} {
		off := off
		unaligned := testing.AllocsPerRun(200, func() { p.Keystream(dst, 42, off) })
		if unaligned > aligned {
			t.Errorf("offset %d: %v allocs/op, aligned path does %v", off, unaligned, aligned)
		}
	}
}

func TestZeroLengthKeystream(t *testing.T) {
	for _, p := range backends(t) {
		p.Keystream(nil, 1, 0)
		p.Keystream([]byte{}, 1, 5)
	}
}

func benchmarkKeystream(b *testing.B, name string, size int) {
	p, err := New(name, testKey)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Keystream(buf, uint64(i), 0)
	}
}

func BenchmarkKeystreamAESFast64K(b *testing.B)   { benchmarkKeystream(b, BackendAESFast, 64<<10) }
func BenchmarkKeystreamAESScalar64K(b *testing.B) { benchmarkKeystream(b, BackendAESScalar, 64<<10) }
func BenchmarkKeystreamSHA164K(b *testing.B)      { benchmarkKeystream(b, BackendSHA1, 64<<10) }
func BenchmarkKeystreamXorshift64K(b *testing.B)  { benchmarkKeystream(b, BackendXorshift, 64<<10) }

func BenchmarkPointQueryAES(b *testing.B) {
	p, _ := New(BackendAESFast, testKey)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = p.Uint64(1, uint64(i))
	}
	_ = sink
}
