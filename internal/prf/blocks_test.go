package prf

import (
	"bytes"
	"testing"
)

// testBackends builds one instance of every backend under a fixed key.
func testBackends(t *testing.T) map[string]PRF {
	t.Helper()
	key := []byte("0123456789abcdef")
	fast, err := NewAESFast(key)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := NewAESScalar(key)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewChaCha20(key)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]PRF{
		BackendAESFast:   fast,
		BackendAESScalar: scalar,
		BackendChaCha20:  cc,
		BackendSHA1:      NewSHA1(key),
		BackendXorshift:  NewXorshift(0xDEADBEEF),
	}
}

// assemble reads total bytes starting at off through the block interface.
func assemble(p PRF, nonce, off uint64, total int) []byte {
	out := make([]byte, 0, total)
	bs := KeystreamBlocks(p, nonce, off, total)
	for len(out) < total {
		blk := bs.Next()
		take := total - len(out)
		if take > BlockBytes {
			take = BlockBytes
		}
		out = append(out, blk[:take]...)
	}
	return out
}

// Block-by-block assembly must equal the bulk Keystream for unaligned
// (off, len) spans — head and tail partial blocks, refill boundaries, and
// the small-span cutoffs — on every backend. This is the bit-identity
// foundation the fused scheme kernels stand on.
func TestKeystreamBlocksMatchesKeystream(t *testing.T) {
	offs := []uint64{0, 1, 7, 15, 16, 63, 64, 65, 127, 1000, 4096, 100003}
	lens := []int{1, 8, 16, 63, 64, 65, 256, 257, 1023, 1024, 1025, 5000}
	for name, p := range testBackends(t) {
		for _, nonce := range []uint64{0, 42, ^uint64(0) >> 1} {
			for _, off := range offs {
				for _, n := range lens {
					want := make([]byte, n)
					p.Keystream(want, nonce, off)
					got := assemble(p, nonce, off, n)
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: nonce=%d off=%d len=%d: block assembly diverges from Keystream", name, nonce, off, n)
					}
				}
			}
		}
	}
}

// Reading past the declared total must continue the stream correctly (the
// budget only sizes generation, it is not a hard stop).
func TestBlockSourcePastTotal(t *testing.T) {
	for name, p := range testBackends(t) {
		var bs BlockSource
		bs.Init(p, 9, 3, 10) // declare 10 bytes, read 8 blocks
		got := make([]byte, 0, 8*BlockBytes)
		for i := 0; i < 8; i++ {
			got = append(got, bs.Next()[:]...)
		}
		want := make([]byte, len(got))
		p.Keystream(want, 9, 3)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: reading past the declared total diverges", name)
		}
	}
}

// Re-Init must fully reposition a source (no state leaks between uses).
func TestBlockSourceReInit(t *testing.T) {
	for name, p := range testBackends(t) {
		var bs BlockSource
		bs.Init(p, 1, 0, 4096)
		for i := 0; i < 10; i++ {
			bs.Next()
		}
		bs.Init(p, 2, 129, 256)
		got := bs.Next()
		want := make([]byte, BlockBytes)
		p.Keystream(want, 2, 129)
		if !bytes.Equal(got[:], want) {
			t.Fatalf("%s: source mispositioned after re-Init", name)
		}
	}
}

// The streaming path must be allocation-free for the software backends and
// cost at most the two-pass path's single CTR construction for AES-fast.
func TestBlockSourceAllocs(t *testing.T) {
	backends := testBackends(t)
	consume := func(p PRF, total int) func() {
		var bs BlockSource
		return func() {
			bs.Init(p, 77, 0, total)
			for got := 0; got < total; got += BlockBytes {
				bs.Next()
			}
		}
	}
	for _, name := range []string{BackendChaCha20, BackendSHA1, BackendXorshift} {
		if a := testing.AllocsPerRun(50, consume(backends[name], 1<<14)); a != 0 {
			t.Errorf("%s: BlockSource allocates %.1f/run, want 0", name, a)
		}
	}
	// AES-scalar's blockAt inherently allocates its counter block per call
	// (interface-call escape); the streaming path must not add to that.
	{
		p := backends[BackendAESScalar]
		dst := make([]byte, 1<<14)
		twoPass := testing.AllocsPerRun(20, func() { p.Keystream(dst, 77, 0) })
		fused := testing.AllocsPerRun(20, consume(p, 1<<14))
		if fused > twoPass {
			t.Errorf("aes-scalar: fused path allocates %.1f/run > two-pass %.1f/run", fused, twoPass)
		}
	}
	// AES-fast: small spans ride the block-function path, bulk spans
	// construct one CTR stream per Init — in both regimes the streaming
	// path must not out-allocate the two-pass Keystream equivalent.
	for _, total := range []int{BlockBytes, 4 * BlockBytes, 1 << 16} {
		p := backends[BackendAESFast]
		dst := make([]byte, total)
		twoPass := testing.AllocsPerRun(20, func() { p.Keystream(dst, 77, 0) })
		fused := testing.AllocsPerRun(20, consume(p, total))
		if fused > twoPass {
			t.Errorf("aes-fast %d B span: fused path allocates %.1f/run > two-pass %.1f/run", total, fused, twoPass)
		}
	}
}
