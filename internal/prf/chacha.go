package prf

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// ChaCha20 backend, implemented from scratch (the standard library does
// not export a ChaCha20 stream outside crypto/internal). It demonstrates
// §8's extensibility claim — "libhear allows users to add new data types
// and operations transparently" — with a PRF whose security rests on ARX
// rounds instead of AES S-boxes: relevant for hosts without AES hardware.
//
// Layout: the original (djb) variant with a 64-bit block counter in words
// 12–13 and a 64-bit nonce in words 14–15, which maps directly onto this
// package's (nonce, blockIdx) keystream addressing. The quarter-round and
// 20-round core match RFC 8439 and are pinned to its test vector.

// chachaBlockBytes is the native ChaCha block size.
const chachaBlockBytes = 64

var (
	sigma = [4]uint32{0x61707865, 0x3320646e, 0x79622d32, 0x6b206574} // "expand 32-byte k"
	tau   = [4]uint32{0x61707865, 0x3120646e, 0x79622d36, 0x6b206574} // "expand 16-byte k"
)

// quarterRound is the ARX core of RFC 8439 §2.1.
func quarterRound(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d = bits.RotateLeft32(d^a, 16)
	c += d
	b = bits.RotateLeft32(b^c, 12)
	a += b
	d = bits.RotateLeft32(d^a, 8)
	c += d
	b = bits.RotateLeft32(b^c, 7)
	return a, b, c, d
}

// chachaCore runs 20 rounds over state and serializes state+working into
// out (RFC 8439 §2.3).
func chachaCore(state *[16]uint32, out *[chachaBlockBytes]byte) {
	var x [16]uint32
	copy(x[:], state[:])
	for i := 0; i < 10; i++ { // 10 double rounds = 20 rounds
		// column rounds
		x[0], x[4], x[8], x[12] = quarterRound(x[0], x[4], x[8], x[12])
		x[1], x[5], x[9], x[13] = quarterRound(x[1], x[5], x[9], x[13])
		x[2], x[6], x[10], x[14] = quarterRound(x[2], x[6], x[10], x[14])
		x[3], x[7], x[11], x[15] = quarterRound(x[3], x[7], x[11], x[15])
		// diagonal rounds
		x[0], x[5], x[10], x[15] = quarterRound(x[0], x[5], x[10], x[15])
		x[1], x[6], x[11], x[12] = quarterRound(x[1], x[6], x[11], x[12])
		x[2], x[7], x[8], x[13] = quarterRound(x[2], x[7], x[8], x[13])
		x[3], x[4], x[9], x[14] = quarterRound(x[3], x[4], x[9], x[14])
	}
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint32(out[i*4:], x[i]+state[i])
	}
}

type chachaPRF struct {
	keyWords [8]uint32
	constant [4]uint32
}

// NewChaCha20 returns the ChaCha20-based PRF. key must be 16 or 32 bytes
// (16-byte keys use the original 128-bit "tau" constant with the key
// repeated, per the original specification).
func NewChaCha20(key []byte) (PRF, error) {
	p := &chachaPRF{}
	switch len(key) {
	case 32:
		p.constant = sigma
		for i := 0; i < 8; i++ {
			p.keyWords[i] = binary.LittleEndian.Uint32(key[i*4:])
		}
	case 16:
		p.constant = tau
		for i := 0; i < 4; i++ {
			w := binary.LittleEndian.Uint32(key[i*4:])
			p.keyWords[i] = w
			p.keyWords[i+4] = w
		}
	default:
		return nil, fmt.Errorf("prf: chacha20 key must be 16 or 32 bytes, got %d", len(key))
	}
	return p, nil
}

func (p *chachaPRF) Name() string { return "chacha20" }

// state assembles the djb-layout state for one 64-byte block.
func (p *chachaPRF) state(nonce, chachaIdx uint64) [16]uint32 {
	var s [16]uint32
	copy(s[0:4], p.constant[:])
	copy(s[4:12], p.keyWords[:])
	s[12] = uint32(chachaIdx)
	s[13] = uint32(chachaIdx >> 32)
	s[14] = uint32(nonce)
	s[15] = uint32(nonce >> 32)
	return s
}

// blockAt exposes the package's 16-byte block abstraction over the 64-byte
// ChaCha blocks.
func (p *chachaPRF) blockAt(dst *[BlockSize]byte, nonce, blockIdx uint64) {
	st := p.state(nonce, blockIdx/4)
	var out [chachaBlockBytes]byte
	chachaCore(&st, &out)
	copy(dst[:], out[(blockIdx%4)*BlockSize:])
}

func (p *chachaPRF) Keystream(dst []byte, nonce, off uint64) {
	// Bulk path: emit whole 64-byte ChaCha blocks directly.
	var out [chachaBlockBytes]byte
	for len(dst) > 0 {
		chachaIdx := off / chachaBlockBytes
		inner := off % chachaBlockBytes
		st := p.state(nonce, chachaIdx)
		chachaCore(&st, &out)
		n := copy(dst, out[inner:])
		dst = dst[n:]
		off += uint64(n)
	}
}

func (p *chachaPRF) Uint64(nonce, idx uint64) uint64 {
	return genericUint64(nonce, idx, p.blockAt)
}
