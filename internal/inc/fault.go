package inc

import (
	"errors"
	"time"
)

// ErrTimeout reports an Allreduce round that did not produce an aggregate
// within the tree's configured timeout — the INC analogue of a lost or
// swallowed frame. The failure is round-global: every rank waiting on the
// round observes the same error, so callers can fall back collectively
// (hear's degradation ladder re-runs the round over the host path).
var ErrTimeout = errors.New("inc: aggregation timed out")

// Interceptor intercepts every frame delivered to a switch — the hook the
// chaos layer uses to model a faulty or adversarial switch. It runs on the
// submitting rank's goroutine after the tap has observed the frame.
// fromRank is the submitting host for leaf ingress and -1 for inter-switch
// hops; seq identifies the collective round. The frame may be mutated in
// place to model corruption. Returning false swallows the frame: the
// switch never counts the arrival, the round stalls, and waiting ranks
// fail with ErrTimeout once the tree timeout fires. Implementations must
// be safe for concurrent use.
type Interceptor func(switchID, fromRank int, seq uint64, frame []byte) bool

// SetInterceptor installs (or clears, with nil) the switch interceptor.
func (t *Tree) SetInterceptor(ic Interceptor) {
	t.mu.Lock()
	t.interceptor = ic
	t.mu.Unlock()
}

// SetTimeout bounds every subsequent Allreduce call: if the aggregate is
// not published within d, the round fails for all its ranks with an error
// wrapping ErrTimeout. Zero (the default) blocks forever, preserving the
// original lossless-fabric semantics.
func (t *Tree) SetTimeout(d time.Duration) {
	t.mu.Lock()
	t.timeout = d
	t.mu.Unlock()
}

func (t *Tree) getInterceptor() Interceptor {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.interceptor
}

func (t *Tree) getTimeout() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.timeout
}

// fail closes the round with err unless it already completed or failed.
// First close wins: a root publish racing a timeout resolves to whichever
// got the round lock first, and the loser is a no-op.
func (r *round) fail(err error) {
	r.mu.Lock()
	if !r.closed {
		r.err = err
		r.closed = true
		close(r.done)
	}
	r.mu.Unlock()
}
