package inc

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"
)

func byteSumFold(dst, src []byte) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// runRound submits one frame per rank concurrently and returns each
// rank's (result, error).
func runRound(t *Tree, p int, frame func(rank int) []byte) ([][]byte, []error) {
	outs := make([][]byte, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := frame(rank)
			errs[rank] = t.Allreduce(rank, buf)
			outs[rank] = buf
		}(r)
	}
	wg.Wait()
	return outs, errs
}

// TestInterceptorSwallowTimesOut: a switch that drops one leaf frame
// stalls the round; with a timeout set, every rank fails with a typed
// ErrTimeout instead of hanging.
func TestInterceptorSwallowTimesOut(t *testing.T) {
	const p = 4
	tree, err := NewTree(p, 2, byteSumFold)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetTimeout(100 * time.Millisecond)
	tree.SetInterceptor(func(switchID, fromRank int, seq uint64, frame []byte) bool {
		return fromRank != 1 // swallow rank 1's leaf ingress
	})
	_, errs := runRound(tree, p, func(rank int) []byte { return []byte{byte(rank), 0} })
	for rank, e := range errs {
		if !errors.Is(e, ErrTimeout) {
			t.Fatalf("rank %d: want ErrTimeout, got %v", rank, e)
		}
	}
}

// TestInterceptorCorruptsInPlace: a mutating interceptor changes the
// aggregate (the switch folds the tampered frame) — detection is the
// verifier's job upstream; the tree must still complete.
func TestInterceptorCorruptsInPlace(t *testing.T) {
	const p = 4
	tree, err := NewTree(p, 2, byteSumFold)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetInterceptor(func(switchID, fromRank int, seq uint64, frame []byte) bool {
		if fromRank == 2 {
			frame[0] ^= 0x80
		}
		return true
	})
	outs, errs := runRound(tree, p, func(rank int) []byte { return []byte{1, 0} })
	want := byte(p) ^ 0x80
	for rank := range errs {
		if errs[rank] != nil {
			t.Fatalf("rank %d: %v", rank, errs[rank])
		}
		if outs[rank][0] != want {
			t.Fatalf("rank %d: got %d, want corrupted sum %d", rank, outs[rank][0], want)
		}
	}
}

// TestTimeoutLatecomerFailsFast: after a round times out, a straggler
// rank submitting to the same round gets the typed error immediately —
// the failed round stays registered until every rank has seen it.
func TestTimeoutLatecomerFailsFast(t *testing.T) {
	const p = 2
	tree, err := NewTree(p, 2, byteSumFold)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetTimeout(50 * time.Millisecond)

	errCh := make(chan error, 1)
	go func() { errCh <- tree.Allreduce(0, []byte{1}) }()
	if e := <-errCh; !errors.Is(e, ErrTimeout) {
		t.Fatalf("rank 0: want ErrTimeout, got %v", e)
	}
	// Rank 1 arrives late: its frame completes the round's arrivals, but
	// the round already failed, so it must get the same typed error fast.
	start := time.Now()
	e := tree.Allreduce(1, []byte{1})
	if !errors.Is(e, ErrTimeout) {
		t.Fatalf("latecomer: want ErrTimeout, got %v", e)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("latecomer took %v; should fail fast, not wait out a fresh timeout", d)
	}
	// The fully-exited failed round must be retired: the next collective
	// call (fresh seq) works normally.
	outs, errs := runRound(tree, p, func(rank int) []byte { return []byte{3} })
	for rank := range errs {
		if errs[rank] != nil {
			t.Fatalf("recovery round rank %d: %v", rank, errs[rank])
		}
		if outs[rank][0] != 6 {
			t.Fatalf("recovery round rank %d: got %d, want 6", rank, outs[rank][0])
		}
	}
}

// TestSeqVisibleToInterceptor: the interceptor sees the round sequence
// number, and it advances per collective call — the site key chaos plans
// schedule against.
func TestSeqVisibleToInterceptor(t *testing.T) {
	const p = 2
	tree, err := NewTree(p, 2, byteSumFold)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	seqs := make(map[uint64]bool)
	tree.SetInterceptor(func(switchID, fromRank int, seq uint64, frame []byte) bool {
		mu.Lock()
		seqs[seq] = true
		mu.Unlock()
		return true
	})
	for round := 0; round < 3; round++ {
		_, errs := runRound(tree, p, func(rank int) []byte {
			b := make([]byte, 8)
			binary.LittleEndian.PutUint64(b, uint64(rank))
			return b
		})
		for rank, e := range errs {
			if e != nil {
				t.Fatalf("round %d rank %d: %v", round, rank, e)
			}
		}
	}
	for want := uint64(0); want < 3; want++ {
		if !seqs[want] {
			t.Fatalf("interceptor never saw seq %d (saw %v)", want, seqs)
		}
	}
}

// TestTimeoutRaceWithPublish: hammer the publish-vs-timeout race — with a
// timeout roughly the round latency, every round must end in exactly one
// of the two outcomes on all ranks consistently (all success with the
// correct sum, or all ErrTimeout).
func TestTimeoutRaceWithPublish(t *testing.T) {
	const p = 4
	tree, err := NewTree(p, 2, byteSumFold)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetTimeout(1 * time.Millisecond)
	for round := 0; round < 200; round++ {
		outs, errs := runRound(tree, p, func(rank int) []byte { return []byte{1} })
		failed := 0
		for _, e := range errs {
			if e != nil {
				if !errors.Is(e, ErrTimeout) {
					t.Fatalf("round %d: unexpected error %v", round, e)
				}
				failed++
			}
		}
		if failed != 0 && failed != p {
			t.Fatalf("round %d: split outcome, %d/%d ranks failed", round, failed, p)
		}
		if failed == 0 {
			for rank := range outs {
				if outs[rank][0] != p {
					t.Fatalf("round %d rank %d: got %d, want %d", round, rank, outs[rank][0], p)
				}
			}
		}
	}
}
