// Package inc simulates in-network computing (INC): an aggregation tree of
// switches in the spirit of SHArP that reduces Allreduce traffic inside the
// network instead of on the hosts. Switches execute the reduction operator
// on opaque byte lanes — they hold no keys, which is the entire point of
// HEAR: the ciphertexts they fold are all they ever see.
//
// The tree also carries an adversary tap: every frame crossing a switch can
// be recorded, modelling the paper's threat model where "any elements
// within the network, such as the NICs and routers, are untrusted" and the
// adversary "can observe the whole network". The adversary experiments in
// internal/adversary replay these captures.
package inc

import (
	"fmt"
	"sync"
	"time"
)

// Fold is the element-wise reduction a switch executes on two frames
// (dst = dst ⊙ src). It must not inspect more than the frame bytes — the
// switch has no keys and no datatype semantics beyond lane width.
type Fold func(dst, src []byte)

// Tap observes frames crossing the network. Implementations must be safe
// for concurrent use; Observe receives a read-only view that is only valid
// during the call (copy to retain).
type Tap interface {
	Observe(switchID, fromRank int, up bool, frame []byte)
}

// Stats aggregates traffic through the tree.
type Stats struct {
	mu          sync.Mutex
	BytesUp     uint64 // host→root direction, including inter-switch hops
	BytesDown   uint64 // root→host broadcast
	FramesUp    uint64
	FramesDown  uint64
	Reductions  uint64 // fold operations executed in-network
	SwitchCount int
	Depth       int
}

// Snapshot returns a copy of the counters.
func (s *Stats) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		BytesUp: s.BytesUp, BytesDown: s.BytesDown,
		FramesUp: s.FramesUp, FramesDown: s.FramesDown,
		Reductions: s.Reductions, SwitchCount: s.SwitchCount, Depth: s.Depth,
	}
}

// node is one switch in the aggregation tree.
type node struct {
	id          int
	parent      *node
	numChildren int
	depth       int
}

// Tree is an INC aggregation tree over numRanks hosts with the given
// switch radix. All ranks of a round must submit equal-length buffers.
type Tree struct {
	numRanks int
	radix    int
	fold     Fold
	leafOf   []*node // rank -> leaf switch
	root     *node
	nodes    []*node

	mu          sync.Mutex
	rankSeq     []uint64          // per-rank collective call counter
	rounds      map[uint64]*round // in-flight rounds by sequence number
	tap         Tap
	interceptor Interceptor   // nil = lossless fabric
	timeout     time.Duration // 0 = rounds block forever
	stats       Stats
}

// round is the state of one in-flight Allreduce.
type round struct {
	mu      sync.Mutex
	seq     uint64
	perNode map[int]*nodeAcc
	done    chan struct{}
	final   []byte
	err     error
	closed  bool // done has been closed (success or failure); guards double-close
	size    int  // frame size, fixed by the first arriving rank
	exits   int  // ranks that have returned from the round (result copied or error seen)
}

type nodeAcc struct {
	arrived int
	acc     []byte
}

// NewTree builds a tree over numRanks hosts with switches of the given
// radix (children per switch).
func NewTree(numRanks, radix int, fold Fold) (*Tree, error) {
	if numRanks < 1 {
		return nil, fmt.Errorf("inc: numRanks %d < 1", numRanks)
	}
	if radix < 2 {
		return nil, fmt.Errorf("inc: radix %d < 2", radix)
	}
	if fold == nil {
		return nil, fmt.Errorf("inc: nil fold")
	}
	t := &Tree{
		numRanks: numRanks,
		radix:    radix,
		fold:     fold,
		leafOf:   make([]*node, numRanks),
		rankSeq:  make([]uint64, numRanks),
		rounds:   make(map[uint64]*round),
	}
	t.build()
	t.stats.SwitchCount = len(t.nodes)
	t.stats.Depth = t.depth()
	return t, nil
}

// build constructs the switch layers bottom-up: ⌈P/k⌉ leaves, then ⌈/k⌉
// per layer until one root remains.
func (t *Tree) build() {
	id := 0
	newNode := func(children int) *node {
		n := &node{id: id, numChildren: children}
		id++
		t.nodes = append(t.nodes, n)
		return n
	}
	// Leaf layer.
	var layer []*node
	for start := 0; start < t.numRanks; start += t.radix {
		endExcl := start + t.radix
		if endExcl > t.numRanks {
			endExcl = t.numRanks
		}
		leaf := newNode(endExcl - start)
		for r := start; r < endExcl; r++ {
			t.leafOf[r] = leaf
		}
		layer = append(layer, leaf)
	}
	// Upper layers.
	for len(layer) > 1 {
		var next []*node
		for start := 0; start < len(layer); start += t.radix {
			endExcl := start + t.radix
			if endExcl > len(layer) {
				endExcl = len(layer)
			}
			parent := newNode(endExcl - start)
			for _, child := range layer[start:endExcl] {
				child.parent = parent
			}
			next = append(next, parent)
		}
		layer = next
	}
	t.root = layer[0]
	// Depth annotation (distance to the root).
	for _, n := range t.nodes {
		d := 0
		for p := n; p.parent != nil; p = p.parent {
			d++
		}
		n.depth = d
	}
}

func (t *Tree) depth() int {
	max := 0
	for _, n := range t.nodes {
		if n.depth > max {
			max = n.depth
		}
	}
	return max + 1 // host→leaf hop included
}

// SetTap installs (or clears, with nil) the adversary tap.
func (t *Tree) SetTap(tap Tap) {
	t.mu.Lock()
	t.tap = tap
	t.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters.
func (t *Tree) Stats() Stats { return t.stats.Snapshot() }

// NumSwitches returns the number of switches in the tree.
func (t *Tree) NumSwitches() int { return len(t.nodes) }

// Depth returns the number of hops from a host to the root.
func (t *Tree) Depth() int { return t.stats.Depth }

func (t *Tree) observe(switchID, from int, up bool, frame []byte) {
	t.mu.Lock()
	tap := t.tap
	t.mu.Unlock()
	if tap != nil {
		tap.Observe(switchID, from, up, frame)
	}
}

func (t *Tree) getRound(seq uint64, size int) (*round, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rounds[seq]
	if !ok {
		r = &round{seq: seq, perNode: make(map[int]*nodeAcc), done: make(chan struct{}), size: size}
		t.rounds[seq] = r
		return r, nil
	}
	if r.size != size {
		// Poison the whole round: the mismatched rank will never deposit,
		// so ranks already waiting would block forever. Fail them all.
		err := fmt.Errorf("inc: rank submitted %d B to a round of %d B frames", size, r.size)
		r.fail(err)
		delete(t.rounds, seq)
		return nil, err
	}
	return r, nil
}

// finishRound retires a round, but only if the map still holds this exact
// round object — a poisoned round may have been replaced at the same seq.
func (t *Tree) finishRound(seq uint64, r *round) {
	t.mu.Lock()
	if t.rounds[seq] == r {
		delete(t.rounds, seq)
	}
	t.mu.Unlock()
}

// exitRound records one rank leaving the round (with the result or its
// error) and retires the round once every rank has left. Failed rounds
// thus stay in the map until all their ranks have observed the error, so
// a straggler joining late fails fast instead of opening a fresh round
// that could never complete. A rank that never arrives (crashed for good)
// pins its failed rounds in the map — a bounded leak traded for typed,
// prompt errors on every surviving rank.
func (t *Tree) exitRound(r *round) {
	r.mu.Lock()
	r.exits++
	last := r.exits == t.numRanks
	r.mu.Unlock()
	if last {
		t.finishRound(r.seq, r)
	}
}

// Allreduce submits rank's buffer for in-network reduction and blocks
// until the aggregate is written back into buf. All ranks must call it
// collectively with equal-length buffers; calls across ranks pair up by
// per-rank call order (MPI collective semantics).
func (t *Tree) Allreduce(rank int, buf []byte) error {
	if rank < 0 || rank >= t.numRanks {
		return fmt.Errorf("inc: rank %d outside [0, %d)", rank, t.numRanks)
	}
	if len(buf) == 0 {
		return fmt.Errorf("inc: empty frame")
	}
	t.mu.Lock()
	seq := t.rankSeq[rank]
	t.rankSeq[rank]++
	t.mu.Unlock()

	r, err := t.getRound(seq, len(buf))
	if err != nil {
		return err
	}
	// Inject the host frame into the leaf switch and combine upward. The
	// last child to arrive at each switch carries the partial aggregate up.
	frame := make([]byte, len(buf))
	copy(frame, buf)
	t.climb(r, t.leafOf[rank], rank, frame)

	if timeout := t.getTimeout(); timeout > 0 {
		select {
		case <-r.done:
		case <-time.After(timeout):
			// First close wins: if the root published while the timer was
			// firing, fail is a no-op and we proceed with the result.
			r.fail(fmt.Errorf("inc: round %d: no aggregate within %v: %w", seq, timeout, ErrTimeout))
		}
	} else {
		<-r.done
	}
	r.mu.Lock()
	roundErr := r.err
	r.mu.Unlock()
	if roundErr != nil {
		t.exitRound(r)
		return roundErr
	}
	// Root broadcasts the aggregate back down; each host link carries one
	// frame (the tap sees it, the host NIC receives it).
	t.observe(t.leafOf[rank].id, -1, false, r.final)
	t.stats.mu.Lock()
	t.stats.BytesDown += uint64(len(r.final))
	t.stats.FramesDown++
	t.stats.mu.Unlock()
	copy(buf, r.final)

	// The last rank to leave retires the round.
	t.exitRound(r)
	return nil
}

// climb delivers a frame to node n; when n has heard from all children it
// forwards the combined frame to its parent (or publishes at the root).
func (t *Tree) climb(r *round, n *node, fromRank int, frame []byte) {
	t.observe(n.id, fromRank, true, frame)
	t.stats.mu.Lock()
	t.stats.BytesUp += uint64(len(frame))
	t.stats.FramesUp++
	t.stats.mu.Unlock()

	// The tap saw the frame on the wire; a chaos interceptor may still
	// corrupt it in place or swallow it before the switch hears it.
	if ic := t.getInterceptor(); ic != nil && !ic(n.id, fromRank, r.seq, frame) {
		return
	}

	r.mu.Lock()
	acc, ok := r.perNode[n.id]
	if !ok {
		acc = &nodeAcc{}
		r.perNode[n.id] = acc
	}
	if acc.acc == nil {
		acc.acc = frame
	} else {
		t.fold(acc.acc, frame)
		t.stats.mu.Lock()
		t.stats.Reductions++
		t.stats.mu.Unlock()
	}
	acc.arrived++
	complete := acc.arrived == n.numChildren
	combined := acc.acc
	r.mu.Unlock()

	if !complete {
		return
	}
	if n.parent == nil {
		// Publish unless the round already failed (e.g. timed out while the
		// last frame was climbing) — the close raced and lost.
		r.mu.Lock()
		if !r.closed {
			r.final = combined
			r.closed = true
			close(r.done)
		}
		r.mu.Unlock()
		return
	}
	t.climb(r, n.parent, -1, combined)
}
