package inc

import (
	"encoding/binary"
	"sync"
	"testing"
)

// Rounds may overlap arbitrarily: a fast rank can be several collectives
// ahead of a slow one, and the per-sequence round state must keep them
// separate. This drives R rounds back-to-back per rank with NO barrier
// between rounds.
func TestOverlappingRoundsNoBarrier(t *testing.T) {
	const p, rounds = 8, 20
	tr, err := NewTree(p, 4, sumFold)
	if err != nil {
		t.Fatal(err)
	}
	errs := make([][]error, p)
	results := make([][]uint64, p)
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		errs[r] = make([]error, rounds)
		results[r] = make([]uint64, rounds)
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				buf := make([]byte, 8)
				binary.LittleEndian.PutUint64(buf, uint64(rank+1)*uint64(k+1))
				errs[rank][k] = tr.Allreduce(rank, buf)
				results[rank][k] = binary.LittleEndian.Uint64(buf)
			}
		}(r)
	}
	wg.Wait()
	for r := 0; r < p; r++ {
		for k := 0; k < rounds; k++ {
			if errs[r][k] != nil {
				t.Fatalf("rank %d round %d: %v", r, k, errs[r][k])
			}
			want := uint64(p*(p+1)/2) * uint64(k+1)
			if results[r][k] != want {
				t.Fatalf("rank %d round %d: got %d, want %d", r, k, results[r][k], want)
			}
		}
	}
	if len(tr.rounds) != 0 {
		t.Errorf("%d rounds leaked", len(tr.rounds))
	}
}

// After a poisoned (mismatched) round, the tree must keep working for
// subsequent rounds.
func TestTreeRecoversAfterPoisonedRound(t *testing.T) {
	const p = 2
	tr, err := NewTree(p, 2, sumFold)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	sizes := []int{8, 16}
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = tr.Allreduce(rank, make([]byte, sizes[rank]))
		}(r)
	}
	wg.Wait()
	bad := 0
	for _, err := range errs {
		if err != nil {
			bad++
		}
	}
	if bad == 0 {
		t.Fatal("mismatched round not rejected")
	}
	// Next round, consistent sizes: must succeed.
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := make([]byte, 8)
			binary.LittleEndian.PutUint64(buf, 5)
			errs[rank] = tr.Allreduce(rank, buf)
			if binary.LittleEndian.Uint64(buf) != 10 {
				errs[rank] = errFormI("wrong sum after recovery")
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d after recovery: %v", r, err)
		}
	}
}

type errFormI string

func (e errFormI) Error() string { return string(e) }
