package inc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// sumFold adds 64-bit lanes (wrapping), the INC op for the int SUM scheme.
func sumFold(dst, src []byte) {
	for o := 0; o+8 <= len(dst); o += 8 {
		binary.LittleEndian.PutUint64(dst[o:], binary.LittleEndian.Uint64(dst[o:])+binary.LittleEndian.Uint64(src[o:]))
	}
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(0, 2, sumFold); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := NewTree(4, 1, sumFold); err == nil {
		t.Error("radix 1 accepted")
	}
	if _, err := NewTree(4, 2, nil); err == nil {
		t.Error("nil fold accepted")
	}
}

func TestTreeTopology(t *testing.T) {
	cases := []struct {
		ranks, radix            int
		wantSwitches, wantDepth int
	}{
		{1, 2, 1, 1},
		{2, 2, 1, 1},
		{4, 2, 3, 2}, // 2 leaves + 1 root
		{8, 2, 7, 3},
		{16, 4, 5, 2}, // 4 leaves + root
		{36, 6, 7, 2}, // 6 leaves + root
		{1152, 16, 72 + 5 + 1, 3},
	}
	for _, c := range cases {
		tr, err := NewTree(c.ranks, c.radix, sumFold)
		if err != nil {
			t.Fatal(err)
		}
		if tr.NumSwitches() != c.wantSwitches {
			t.Errorf("ranks=%d radix=%d: %d switches, want %d", c.ranks, c.radix, tr.NumSwitches(), c.wantSwitches)
		}
		if tr.Depth() != c.wantDepth {
			t.Errorf("ranks=%d radix=%d: depth %d, want %d", c.ranks, c.radix, tr.Depth(), c.wantDepth)
		}
	}
}

func runAllreduce(t *testing.T, tr *Tree, inputs [][]byte) [][]byte {
	t.Helper()
	p := len(inputs)
	outs := make([][]byte, p)
	var wg sync.WaitGroup
	errs := make([]error, p)
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := make([]byte, len(inputs[rank]))
			copy(buf, inputs[rank])
			errs[rank] = tr.Allreduce(rank, buf)
			outs[rank] = buf
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return outs
}

func TestAllreduceSumCorrectness(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 17, 64} {
		for _, radix := range []int{2, 4, 16} {
			tr, err := NewTree(p, radix, sumFold)
			if err != nil {
				t.Fatal(err)
			}
			const n = 16
			inputs := make([][]byte, p)
			want := make([]uint64, n)
			for r := 0; r < p; r++ {
				inputs[r] = make([]byte, n*8)
				for j := 0; j < n; j++ {
					v := uint64(r*100 + j)
					binary.LittleEndian.PutUint64(inputs[r][j*8:], v)
					want[j] += v
				}
			}
			outs := runAllreduce(t, tr, inputs)
			for r := 0; r < p; r++ {
				for j := 0; j < n; j++ {
					if got := binary.LittleEndian.Uint64(outs[r][j*8:]); got != want[j] {
						t.Fatalf("p=%d radix=%d rank=%d elem=%d: got %d, want %d", p, radix, r, j, got, want[j])
					}
				}
			}
		}
	}
}

func TestConsecutiveRounds(t *testing.T) {
	tr, err := NewTree(4, 2, sumFold)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		inputs := make([][]byte, 4)
		for r := range inputs {
			inputs[r] = make([]byte, 8)
			binary.LittleEndian.PutUint64(inputs[r], uint64(r+round*10))
		}
		outs := runAllreduce(t, tr, inputs)
		want := uint64(0 + 1 + 2 + 3 + 4*round*10)
		for r := range outs {
			if got := binary.LittleEndian.Uint64(outs[r]); got != want {
				t.Fatalf("round %d rank %d: got %d, want %d", round, r, got, want)
			}
		}
	}
	if len(tr.rounds) != 0 {
		t.Errorf("%d rounds leaked", len(tr.rounds))
	}
}

func TestMismatchedFrameSizeIsError(t *testing.T) {
	tr, err := NewTree(2, 2, sumFold)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	sizes := []int{8, 16}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			errs[rank] = tr.Allreduce(rank, make([]byte, sizes[rank]))
		}(r)
	}
	wg.Wait()
	if errs[0] == nil && errs[1] == nil {
		t.Error("mismatched frame sizes accepted")
	}
}

func TestAllreduceArgErrors(t *testing.T) {
	tr, _ := NewTree(2, 2, sumFold)
	if err := tr.Allreduce(5, make([]byte, 8)); err == nil {
		t.Error("bad rank accepted")
	}
	if err := tr.Allreduce(0, nil); err == nil {
		t.Error("empty frame accepted")
	}
}

// capture is a Tap that retains every frame.
type capture struct {
	mu     sync.Mutex
	frames [][]byte
	up     int
	down   int
}

func (c *capture) Observe(switchID, from int, up bool, frame []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([]byte, len(frame))
	copy(cp, frame)
	c.frames = append(c.frames, cp)
	if up {
		c.up++
	} else {
		c.down++
	}
}

func TestTapSeesAllTraffic(t *testing.T) {
	tr, err := NewTree(4, 2, sumFold)
	if err != nil {
		t.Fatal(err)
	}
	tap := &capture{}
	tr.SetTap(tap)
	inputs := make([][]byte, 4)
	for r := range inputs {
		inputs[r] = make([]byte, 8)
		binary.LittleEndian.PutUint64(inputs[r], uint64(r))
	}
	runAllreduce(t, tr, inputs)
	// Up: 4 host frames + 2 leaf→root frames; down: 4 host frames.
	if tap.up != 6 {
		t.Errorf("tap saw %d up frames, want 6", tap.up)
	}
	if tap.down != 4 {
		t.Errorf("tap saw %d down frames, want 4", tap.down)
	}
	// The unencrypted inputs are visible verbatim — the vulnerability HEAR
	// exists to close.
	found := false
	for _, f := range tap.frames {
		if bytes.Equal(f, inputs[2]) {
			found = true
		}
	}
	if !found {
		t.Error("plaintext frame not observed by tap; capture is broken")
	}
}

func TestStatsAccounting(t *testing.T) {
	tr, err := NewTree(4, 2, sumFold)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([][]byte, 4)
	for r := range inputs {
		inputs[r] = make([]byte, 64)
	}
	runAllreduce(t, tr, inputs)
	st := tr.Stats()
	if st.BytesUp != 6*64 {
		t.Errorf("BytesUp = %d, want %d", st.BytesUp, 6*64)
	}
	if st.BytesDown != 4*64 {
		t.Errorf("BytesDown = %d, want %d", st.BytesDown, 4*64)
	}
	// 4 ranks: each switch folds (children−1) times: leaves 1 each, root 1.
	if st.Reductions != 3 {
		t.Errorf("Reductions = %d, want 3", st.Reductions)
	}
}

func TestOpaqueFoldNeverSeesKeys(t *testing.T) {
	// The fold receives only the frame bytes; this test pins the interface
	// property by folding with an op that records frame lengths.
	var lengths []int
	var mu sync.Mutex
	fold := func(dst, src []byte) {
		mu.Lock()
		lengths = append(lengths, len(dst), len(src))
		mu.Unlock()
		sumFold(dst, src)
	}
	tr, err := NewTree(3, 2, fold)
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{make([]byte, 24), make([]byte, 24), make([]byte, 24)}
	runAllreduce(t, tr, inputs)
	for _, l := range lengths {
		if l != 24 {
			t.Errorf("fold saw a %d B buffer, want 24", l)
		}
	}
}

func BenchmarkTreeAllreduce64KiBx8(b *testing.B) {
	tr, err := NewTree(8, 4, sumFold)
	if err != nil {
		b.Fatal(err)
	}
	bufs := make([][]byte, 8)
	for r := range bufs {
		bufs[r] = make([]byte, 64<<10)
	}
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				if err := tr.Allreduce(rank, bufs[rank]); err != nil {
					panic(fmt.Sprint(err))
				}
			}(r)
		}
		wg.Wait()
	}
}
