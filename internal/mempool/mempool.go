// Package mempool is the pre-allocated block pool libhear uses on its
// pipelined data path (§6, "Memory allocation"): intermediate send-buffer
// blocks come from a pool sized at initialization, avoiding per-call
// malloc and — on the real RDMA path — repeated memory registration. Here
// it avoids per-block garbage and keeps the pipelined path allocation-free
// in steady state.
package mempool

import (
	"fmt"
	"sync"
)

// Pool hands out fixed-size blocks.
//
// Alignment contract: every block's base address is at least 8-byte
// aligned — blocks are whole `make([]byte, n)` heap allocations, whose
// bases Go's allocator aligns to the size class (≥ 8 bytes for any block
// this pool would hold), and Put rejects reslices by length. Callers that
// need aligned interior payloads (the gateway lands SUBMIT chunk bytes at
// offset 16 so the word-wise fold kernels read aligned u64s) may therefore
// pick any 8-byte-multiple offset into a block and rely on it
// (TestBlockAlignment pins this down).
type Pool struct {
	blockSize int
	mu        sync.Mutex
	freed     *sync.Cond // lazily initialized by GetWait; signaled by Put
	free      [][]byte
	allocated int
	limit     int
	hits      uint64
	misses    uint64
	waits     uint64
}

// New creates a pool of blockSize-byte blocks, pre-populating it with
// prealloc blocks. limit caps total blocks ever allocated (0 = unlimited);
// Get beyond the cap returns an error instead of growing, mirroring a
// pinned-memory budget.
func New(blockSize, prealloc, limit int) (*Pool, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("mempool: block size %d <= 0", blockSize)
	}
	if prealloc < 0 || (limit > 0 && prealloc > limit) {
		return nil, fmt.Errorf("mempool: prealloc %d outside [0, limit %d]", prealloc, limit)
	}
	p := &Pool{blockSize: blockSize, limit: limit}
	for i := 0; i < prealloc; i++ {
		p.free = append(p.free, make([]byte, blockSize))
	}
	p.allocated = prealloc
	return p, nil
}

// BlockSize returns the fixed block size.
func (p *Pool) BlockSize() int { return p.blockSize }

// Get returns a block from the pool, growing it if under the limit.
func (p *Pool) Get() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		p.hits++
		return b, nil
	}
	if p.limit > 0 && p.allocated >= p.limit {
		return nil, fmt.Errorf("mempool: exhausted (%d blocks of %d B)", p.limit, p.blockSize)
	}
	p.allocated++
	p.misses++
	return make([]byte, p.blockSize), nil
}

// GetWait is Get with backpressure: when the pool is capped and exhausted
// it blocks until another goroutine Puts a block back, instead of failing.
// Bounded producers (the aggregation gateway's frame readers) use it so a
// fixed pinned-memory budget throttles intake rather than dropping work.
// Without a limit it never blocks — it grows exactly like Get.
func (p *Pool) GetWait() []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.freed == nil {
		p.freed = sync.NewCond(&p.mu)
	}
	for {
		if n := len(p.free); n > 0 {
			b := p.free[n-1]
			p.free = p.free[:n-1]
			p.hits++
			return b
		}
		if p.limit <= 0 || p.allocated < p.limit {
			p.allocated++
			p.misses++
			return make([]byte, p.blockSize)
		}
		p.waits++
		p.freed.Wait()
	}
}

// Put returns a block. Foreign-sized blocks are rejected — accepting them
// would corrupt the pool invariant.
func (p *Pool) Put(b []byte) error {
	if len(b) != p.blockSize {
		return fmt.Errorf("mempool: block of %d B returned to pool of %d B blocks", len(b), p.blockSize)
	}
	p.mu.Lock()
	p.free = append(p.free, b)
	if p.freed != nil {
		p.freed.Signal()
	}
	p.mu.Unlock()
	return nil
}

// Stats returns (hits, misses, allocated): hits are pool reuses, misses
// are growth allocations.
func (p *Pool) Stats() (hits, misses uint64, allocated int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.allocated
}

// Waits returns how many times GetWait blocked on an exhausted pool — the
// backpressure counter the gateway's STATS frame reports.
func (p *Pool) Waits() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.waits
}
