package mempool

import (
	"sync"
	"testing"
	"time"
	"unsafe"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(64, -1, 0); err == nil {
		t.Error("negative prealloc accepted")
	}
	if _, err := New(64, 10, 5); err == nil {
		t.Error("prealloc > limit accepted")
	}
}

func TestGetPutReuse(t *testing.T) {
	p, err := New(128, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Get()
	if err != nil || len(a) != 128 {
		t.Fatalf("Get: %v, %d B", err, len(a))
	}
	if err := p.Put(a); err != nil {
		t.Fatal(err)
	}
	b, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("pool did not reuse the returned block")
	}
	hits, misses, allocated := p.Stats()
	if hits < 2 || misses != 0 || allocated != 2 {
		t.Errorf("stats: hits=%d misses=%d allocated=%d", hits, misses, allocated)
	}
}

func TestGrowthAndLimit(t *testing.T) {
	p, err := New(16, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Get()
	b, err := p.Get() // grows to the limit
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); err == nil {
		t.Error("pool exceeded its limit")
	}
	if err := p.Put(a); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(); err != nil {
		t.Errorf("Get after Put failed: %v", err)
	}
	_ = b
}

func TestPutRejectsForeignBlock(t *testing.T) {
	p, _ := New(32, 0, 0)
	if err := p.Put(make([]byte, 16)); err == nil {
		t.Error("foreign-sized block accepted")
	}
}

func TestConcurrentUse(t *testing.T) {
	p, err := New(256, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b, err := p.Get()
				if err != nil {
					t.Error(err)
					return
				}
				b[0] = byte(i)
				if err := p.Put(b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestGetWaitBlocksAtLimit(t *testing.T) {
	p, err := New(64, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	held := p.GetWait() // drains the only block
	got := make(chan []byte)
	go func() { got <- p.GetWait() }()
	select {
	case <-got:
		t.Fatal("GetWait returned with the pool exhausted at its limit")
	case <-time.After(20 * time.Millisecond):
	}
	if err := p.Put(held); err != nil {
		t.Fatal(err)
	}
	select {
	case b := <-got:
		if len(b) != 64 {
			t.Errorf("block of %d B, want 64", len(b))
		}
	case <-time.After(time.Second):
		t.Fatal("GetWait did not wake after Put")
	}
	if p.Waits() == 0 {
		t.Error("backpressure wait not counted")
	}
}

func TestGetWaitGrowsWithoutLimit(t *testing.T) {
	p, err := New(32, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, b := p.GetWait(), p.GetWait()
	if len(a) != 32 || len(b) != 32 {
		t.Errorf("blocks %d/%d B, want 32", len(a), len(b))
	}
}

// TestGetPutAllocFree pins the steady state: once the pool holds its
// blocks, Get/Put cycles allocate nothing — the property the gateway's
// zero-copy SUBMIT ingress is built on.
func TestGetPutAllocFree(t *testing.T) {
	p, err := New(4096, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		b := p.GetWait()
		if err := p.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	if n := testing.AllocsPerRun(100, cycle); n != 0 {
		t.Errorf("Get/Put cycle allocates %.1f/op, want 0", n)
	}
}

// TestGetPutContention hammers Get/Put from many goroutines (run under
// -race in CI): the pool invariants must hold and every block must come
// back distinct.
func TestGetPutContention(t *testing.T) {
	const workers, iters = 8, 500
	p, err := New(256, workers, workers)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				b := p.GetWait()
				b[0] = seed // scribble: a shared block would race under -race
				if err := p.Put(b); err != nil {
					t.Error(err)
					return
				}
			}
		}(byte(w))
	}
	wg.Wait()
	if _, _, allocated := p.Stats(); allocated > workers {
		t.Errorf("allocated %d blocks, limit %d", allocated, workers)
	}
}

// TestBlockAlignment pins the documented contract: block bases are at
// least 8-byte aligned, so callers may fold 64-bit words at any 8-byte
// offset into a block.
func TestBlockAlignment(t *testing.T) {
	for _, size := range []int{16, 4096, 64<<10 + 16} {
		p, err := New(size, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			b := p.GetWait()
			if addr := uintptr(unsafe.Pointer(&b[0])); addr%8 != 0 {
				t.Fatalf("block base %#x of %d B pool not 8-byte aligned", addr, size)
			}
		}
	}
}
