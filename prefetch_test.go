package hear

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"hear/internal/chaos"
	"hear/internal/mpi"
	"hear/internal/noise"
)

// The prefetch integration tests pin the tentpole property end to end:
// with NoisePrefetch enabled, every scheme on every data path produces
// ciphertexts and results bit-identical to the serial non-prefetched run,
// across multiple epochs so the speculated planes actually serve.

const prefetchTestBudget = 4 << 20

func bits64(vals []float64) []byte {
	out := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

func bits32(vals []float32) []byte {
	out := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// prefetchRuns drives one collective of every scheme with deterministic
// rank/iteration-dependent data and returns the result's exact bit pattern.
var prefetchRuns = []struct {
	name string
	run  func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error)
}{
	{"int64-sum", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(c.Rank()+1)*1000003 + int64(i)*31 + int64(iter)*7
		}
		out := make([]int64, n)
		if err := ctx.AllreduceInt64Sum(c, in, out); err != nil {
			return nil, err
		}
		return marshal64(out), nil
	}},
	{"int32-sum", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]int32, n)
		for i := range in {
			in[i] = int32(c.Rank()*7 + i*3 + iter)
		}
		out := make([]int32, n)
		if err := ctx.AllreduceInt32Sum(c, in, out); err != nil {
			return nil, err
		}
		b := make([]byte, 4*n)
		for i, v := range out {
			binary.LittleEndian.PutUint32(b[i*4:], uint32(v))
		}
		return b, nil
	}},
	{"int64-prod", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]uint64, n)
		for i := range in {
			in[i] = uint64(c.Rank()) + 2 + uint64(i%3) + uint64(iter)
		}
		out := make([]uint64, n)
		if err := ctx.AllreduceUint64Prod(c, in, out); err != nil {
			return nil, err
		}
		b := make([]byte, 8*n)
		for i, v := range out {
			binary.LittleEndian.PutUint64(b[i*8:], v)
		}
		return b, nil
	}},
	{"int64-xor", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]uint64, n)
		for i := range in {
			in[i] = uint64(c.Rank())<<40 ^ uint64(i)*0x9E3779B9 ^ uint64(iter)
		}
		out := make([]uint64, n)
		if err := ctx.AllreduceUint64Xor(c, in, out); err != nil {
			return nil, err
		}
		b := make([]byte, 8*n)
		for i, v := range out {
			binary.LittleEndian.PutUint64(b[i*8:], v)
		}
		return b, nil
	}},
	{"float32-sum", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float32, n)
		for i := range in {
			in[i] = 0.25 + float32(i%13)/16 + float32(c.Rank())/8 + float32(iter)/32
		}
		out := make([]float32, n)
		if err := ctx.AllreduceFloat32Sum(c, in, out); err != nil {
			return nil, err
		}
		return bits32(out), nil
	}},
	{"float32-prod", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float32, n)
		for i := range in {
			in[i] = 1 + float32(c.Rank()+1)/16 + float32(i%5)/64
		}
		out := make([]float32, n)
		if err := ctx.AllreduceFloat32Prod(c, in, out); err != nil {
			return nil, err
		}
		return bits32(out), nil
	}},
	{"float32-sum-v2", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float32, n)
		for i := range in {
			in[i] = 0.5 - float32(i%4)/8 + float32(c.Rank())/4
		}
		out := make([]float32, n)
		if err := ctx.AllreduceFloat32SumV2(c, in, out); err != nil {
			return nil, err
		}
		return bits32(out), nil
	}},
	{"float64-sum", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float64, n)
		for i := range in {
			in[i] = 0.125 + float64(i%11)/32 + float64(c.Rank())/4 + float64(iter)/64
		}
		out := make([]float64, n)
		if err := ctx.AllreduceFloat64Sum(c, in, out); err != nil {
			return nil, err
		}
		return bits64(out), nil
	}},
	{"float64-prod", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float64, n)
		for i := range in {
			in[i] = 1 + float64(c.Rank()+1)/32 + float64(i%7)/128
		}
		out := make([]float64, n)
		if err := ctx.AllreduceFloat64Prod(c, in, out); err != nil {
			return nil, err
		}
		return bits64(out), nil
	}},
	{"float64-sum-v2", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float64, n)
		for i := range in {
			in[i] = 0.25 + float64(i%9)/16 - float64(c.Rank())/8
		}
		out := make([]float64, n)
		if err := ctx.AllreduceFloat64SumV2(c, in, out); err != nil {
			return nil, err
		}
		return bits64(out), nil
	}},
	{"fixed-sum", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float64, n)
		for i := range in {
			in[i] = 0.25*float64(c.Rank()+1) + float64(i%7)/8
		}
		out := make([]float64, n)
		if err := ctx.AllreduceFixedSum(c, in, out); err != nil {
			return nil, err
		}
		return bits64(out), nil
	}},
	{"fixed-prod", func(ctx *Context, c *mpi.Comm, n, iter int) ([]byte, error) {
		in := make([]float64, n)
		for i := range in {
			in[i] = 1.25 + float64(i%2)/4
		}
		out := make([]float64, n)
		if err := ctx.AllreduceFixedProd(c, in, out); err != nil {
			return nil, err
		}
		return bits64(out), nil
	}},
}

// runPrefetchMatrix runs every scheme for iters epochs on a fresh world
// and returns the result fingerprints indexed [scheme][rank] (iterations
// concatenated). opts.Rand is pinned so twin calls share the key schedule.
func runPrefetchMatrix(t *testing.T, opts Options, p, n, iters int) (map[string][][]byte, []*Context) {
	t.Helper()
	opts.Rand = &seqReader{next: 42}
	w, ctxs := initWorld(t, p, opts)
	out := make(map[string][][]byte, len(prefetchRuns))
	for _, pr := range prefetchRuns {
		out[pr.name] = make([][]byte, p)
	}
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		for _, pr := range prefetchRuns {
			for iter := 0; iter < iters; iter++ {
				b, err := pr.run(ctx, c, n, iter)
				if err != nil {
					return fmt.Errorf("%s iter %d: %w", pr.name, iter, err)
				}
				out[pr.name][c.Rank()] = append(out[pr.name][c.Rank()], b...)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, ctxs
}

func comparePrefetchMatrices(t *testing.T, base, pre map[string][][]byte) {
	t.Helper()
	for name, ranks := range base {
		for r := range ranks {
			if !bytes.Equal(base[name][r], pre[name][r]) {
				t.Errorf("%s rank %d: prefetched results differ from baseline", name, r)
			}
		}
	}
}

// TestPrefetchSchemesBitIdenticalSync: every scheme on the sync data path,
// three epochs deep, must be bit-identical with and without prefetch.
func TestPrefetchSchemesBitIdenticalSync(t *testing.T) {
	const p, n, iters = 3, 2048, 3
	base, _ := runPrefetchMatrix(t, Options{}, p, n, iters)
	pre, ctxs := runPrefetchMatrix(t, Options{NoisePrefetch: prefetchTestBudget}, p, n, iters)
	comparePrefetchMatrices(t, base, pre)
	for r, ctx := range ctxs {
		s := ctx.PrefetchStats()
		if s.GenPlanes == 0 {
			t.Errorf("rank %d: prefetch generated nothing — the comparison was vacuous", r)
		}
		if s.HitBytes == 0 {
			t.Errorf("rank %d: prefetch never hit (stats %+v)", r, s)
		}
	}
}

// TestPrefetchSchemesBitIdenticalPipelined: same matrix over the pipelined
// (Iallreduce) data path, whose kick fires from the first in-flight block.
func TestPrefetchSchemesBitIdenticalPipelined(t *testing.T) {
	const p, n, iters = 3, 2048, 3
	pipeOpts := Options{PipelineBlockBytes: 8 << 10}
	base, _ := runPrefetchMatrix(t, pipeOpts, p, n, iters)
	pipeOpts.NoisePrefetch = prefetchTestBudget
	pre, ctxs := runPrefetchMatrix(t, pipeOpts, p, n, iters)
	comparePrefetchMatrices(t, base, pre)
	for r, ctx := range ctxs {
		if s := ctx.PrefetchStats(); s.HitBytes == 0 {
			t.Errorf("rank %d: pipelined prefetch never hit (stats %+v)", r, s)
		}
	}
}

// TestPrefetchSurvivesVerifiedRetry drives the epoch-invalidation path for
// real: a corrupting switch forces the verified-retry ladder, whose extra
// Advance calls leave the speculated planes one epoch behind. Epoch tags
// must turn them into misses — the recovered sums stay correct — and the
// retries must be observable.
func TestPrefetchSurvivesVerifiedRetry(t *testing.T) {
	const p, n = 4, 1024
	dataTree, tagTree := buildVerifiedTrees(t, p)
	corrupt := chaos.NewRule(chaos.LayerINC, chaos.FaultCorrupt)
	plan := chaos.NewPlan(0xC0BB, corrupt)
	dataTree.SetInterceptor(plan.INCInterceptor(0))

	w, ctxs := initWorld(t, p, Options{
		INC: dataTree, INCTags: tagTree, VerifiedRetry: 2,
		NoisePrefetch: prefetchTestBudget,
	})
	verifier, err := NewVerifier(0xFA117)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := make([]int64, n)
		want := make([]int64, n)
		for i := range data {
			data[i] = int64(c.Rank()+1)*100 + int64(i)
			for r := 0; r < p; r++ {
				want[i] += int64(r+1)*100 + int64(i)
			}
		}
		out := make([]int64, n)
		for round := 0; round < 3; round++ {
			if err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, data, out); err != nil {
				return err
			}
			for i := range out {
				if out[i] != want[i] {
					return fmt.Errorf("rank %d round %d elem %d: got %d, want %d", c.Rank(), round, i, out[i], want[i])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ctx := range ctxs {
		if ctx.VerifiedRetries() < 1 {
			t.Errorf("rank %d: no verified retries — the ladder never fired", r)
		}
		s := ctx.PrefetchStats()
		if s.MissBytes == 0 {
			t.Errorf("rank %d: retry epochs produced no misses (stats %+v) — stale planes may have served", r, s)
		}
	}
	if len(plan.Events()) == 0 {
		t.Fatal("the corruption rule never fired")
	}
}

// TestPrefetchStatsOffByDefault: without the option, stats stay zero and
// no prefetcher is attached.
func TestPrefetchStatsOffByDefault(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		in := make([]int64, 1024)
		return ctxs[c.Rank()].AllreduceInt64Sum(c, in, make([]int64, 1024))
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ctx := range ctxs {
		if s := ctx.PrefetchStats(); s != (noise.Stats{}) {
			t.Errorf("rank %d: stats nonzero with prefetch off: %+v", r, s)
		}
	}
}

// TestCipherBufGrowShrinkNoRealloc pins the sync-path ciphertext scratch:
// once grown, trains of grow/shrink calls reuse the same block with zero
// allocations per call.
func TestCipherBufGrowShrinkNoRealloc(t *testing.T) {
	_, ctxs := initWorld(t, 1, Options{})
	ctx := ctxs[0]
	sizes := []int{64 << 10, 4 << 10, 128, 100 << 10, 32 << 10, 128 << 10, 1 << 10}
	// Warm to the largest size in the train.
	buf, done := ctx.cipherBuf(128 << 10)
	if len(buf) != 128<<10 {
		t.Fatalf("warm buf len %d", len(buf))
	}
	done()
	bad := -1
	allocs := testing.AllocsPerRun(100, func() {
		for _, n := range sizes {
			b, release := ctx.cipherBuf(n)
			if len(b) != n {
				bad = n
			}
			release()
		}
	})
	if bad >= 0 {
		t.Fatalf("cipherBuf returned wrong length for %d", bad)
	}
	if allocs != 0 {
		t.Errorf("grow/shrink train allocates %v per run, want 0", allocs)
	}
	// Above the pooling cap the buffer is a fresh one-shot allocation.
	big, release := ctx.cipherBuf(5 << 20)
	if len(big) != 5<<20 {
		t.Fatalf("oversized buf len %d", len(big))
	}
	release()
}
